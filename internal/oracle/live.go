package oracle

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/load"
)

// CheckLiveIndex compares the multi-segment live index against a
// from-scratch rebuild of the surviving documents: a random
// add/delete/seal schedule is driven to 1, 2, and 4 sealed segments
// (plus a mutable tail), with and without deletions, and every query
// mode — conjunctive, disjunctive, ranked top-k — must return
// identical answers to a plain Builder over exactly the documents that
// survived, before compaction, after compaction, and after a
// close/reopen that replays the WAL.
func CheckLiveIndex(seed int64, dir string) error {
	docs, vocab := load.GenCorpus(seed, 90+int(seed%5)*10, 30)
	for _, segments := range []int{1, 2, 4} {
		for _, deletions := range []bool{false, true} {
			if err := checkLiveOne(seed, dir, docs, vocab, segments, deletions); err != nil {
				return fmt.Errorf("segments=%d deletions=%v: %w", segments, deletions, err)
			}
		}
	}
	return nil
}

func checkLiveOne(seed int64, dir string, docs, vocab []string, segments int, deletions bool) error {
	rng := rand.New(rand.NewSource(seed*31 + int64(segments)*7 + boolInt64(deletions)))
	all := append(codecs.All(), codecs.Extensions()...)
	var codec core.Codec
	if pick := int(seed+int64(segments)) % (len(all) + 1); pick < len(all) {
		codec = all[pick] // the +1 slot leaves the auto-selector in rotation
	}

	sub := filepath.Join(dir, fmt.Sprintf("live-%d-%v", segments, deletions))
	l, err := index.OpenLive(sub, index.LiveOptions{Codec: codec})
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	defer l.Close()

	// Random schedule: the corpus is fed in seal-sized runs; deletions,
	// when enabled, strike both already-sealed and still-mutable
	// documents between runs. A short tail stays in the mutable segment.
	surviving := map[uint32]string{}
	tail := 5 + rng.Intn(5)
	perSeg := (len(docs) - tail) / segments
	pos := 0
	feed := func(n int) error {
		for i := 0; i < n && pos < len(docs); i++ {
			id, err := l.Add(docs[pos])
			if err != nil {
				return fmt.Errorf("add %d: %w", pos, err)
			}
			surviving[id] = docs[pos]
			pos++
		}
		return nil
	}
	strike := func() error {
		if !deletions || len(surviving) < 4 {
			return nil
		}
		ids := make([]uint32, 0, len(surviving))
		for id := range surviving {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for k := 0; k < 1+len(ids)/8; k++ {
			victim := ids[rng.Intn(len(ids))]
			if _, ok := surviving[victim]; !ok {
				continue
			}
			if err := l.Delete(victim); err != nil {
				return fmt.Errorf("delete %d: %w", victim, err)
			}
			delete(surviving, victim)
		}
		return nil
	}
	for s := 0; s < segments; s++ {
		if err := feed(perSeg); err != nil {
			return err
		}
		if err := strike(); err != nil {
			return err
		}
		if err := l.Seal(); err != nil {
			return fmt.Errorf("seal %d: %w", s, err)
		}
	}
	if err := feed(len(docs) - pos); err != nil {
		return err
	}
	if err := strike(); err != nil {
		return err
	}

	if err := liveQueryDiff(rng, l, surviving, vocab, 12); err != nil {
		return fmt.Errorf("pre-compaction: %w", err)
	}
	if segments >= 2 {
		if err := l.Compact(); err != nil {
			return fmt.Errorf("compact: %w", err)
		}
		if err := liveQueryDiff(rng, l, surviving, vocab, 12); err != nil {
			return fmt.Errorf("post-compaction: %w", err)
		}
	}

	// Close and reopen: recovery replays the manifest + WAL tail and
	// must land on the same answers.
	if err := l.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	l2, err := index.OpenLive(sub, index.LiveOptions{Codec: codec})
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	defer l2.Close()
	if err := liveQueryDiff(rng, l2, surviving, vocab, 12); err != nil {
		return fmt.Errorf("post-reopen: %w", err)
	}
	return nil
}

// liveQueryDiff rebuilds the surviving documents from scratch with the
// plain Builder and requires the live index to agree on every query
// mode, with docids mapped through the rebuild's dense assignment.
func liveQueryDiff(rng *rand.Rand, l *index.Live, surviving map[uint32]string, vocab []string, rounds int) error {
	ids := make([]uint32, 0, len(surviving))
	for id := range surviving {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b := index.NewAutoBuilder()
	back := make(map[uint32]uint32, len(ids))
	for local, id := range ids {
		b.AddDocument(surviving[id])
		back[uint32(local)] = id
	}
	ref, err := b.Build()
	if err != nil {
		return fmt.Errorf("reference build: %w", err)
	}
	if l.Docs() != len(surviving) {
		return fmt.Errorf("live reports %d docs, reference %d", l.Docs(), len(surviving))
	}
	toGlobal := func(locals []uint32) []uint32 {
		out := make([]uint32, len(locals))
		for i, lo := range locals {
			out[i] = back[lo]
		}
		return out
	}
	ks := []int{1, 5, 20, 100000}
	for q := 0; q < rounds; q++ {
		terms := make([]string, 1+rng.Intn(4))
		for i := range terms {
			terms[i] = vocab[rng.Intn(len(vocab))]
		}
		wantAnd, _ := ref.Conjunctive(terms...)
		gotAnd, err := l.Conjunctive(terms...)
		if err != nil {
			return fmt.Errorf("and %v: %w", terms, err)
		}
		if want := toGlobal(wantAnd); diffU32(gotAnd, want) >= 0 || len(gotAnd) != len(want) {
			return fmt.Errorf("and %v: live %v, reference %v", terms, gotAnd, want)
		}
		wantOr, _ := ref.Disjunctive(terms...)
		gotOr, err := l.Disjunctive(terms...)
		if err != nil {
			return fmt.Errorf("or %v: %w", terms, err)
		}
		if want := toGlobal(wantOr); diffU32(gotOr, want) >= 0 || len(gotOr) != len(want) {
			return fmt.Errorf("or %v: live %v, reference %v", terms, gotOr, want)
		}
		k := ks[rng.Intn(len(ks))]
		wantTop, err := ref.TopK(k, terms...)
		if err != nil {
			return fmt.Errorf("reference topk k=%d %v: %w", k, terms, err)
		}
		for i := range wantTop {
			wantTop[i].Doc = back[wantTop[i].Doc]
		}
		gotTop, err := l.TopK(k, terms...)
		if err != nil {
			return fmt.Errorf("topk k=%d %v: %w", k, terms, err)
		}
		if !(len(gotTop) == 0 && len(wantTop) == 0) && !reflect.DeepEqual(gotTop, wantTop) {
			return fmt.Errorf("topk k=%d %v: live %v, reference %v", k, terms, gotTop, wantTop)
		}
	}
	return nil
}

func boolInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
