package svgplot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func samplePlot() *Plot {
	return &Plot{
		Title:  "demo",
		XLabel: "bytes",
		YLabel: "ms",
		LogX:   true,
		LogY:   true,
		Series: []Series{{
			Name: "methods",
			Points: []Point{
				{X: 1000, Y: 0.5, Label: "Roaring"},
				{X: 50000, Y: 2.0, Label: "WAH"},
				{X: 2000, Y: 8.0, Label: "PEF"},
			},
		}},
	}
}

func TestRenderBasics(t *testing.T) {
	var buf bytes.Buffer
	if err := samplePlot().Render(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "demo", "bytes", "ms", "Roaring", "WAH", "PEF",
		"<circle", "<line",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<circle") != 3 {
		t.Errorf("want 3 marks, got %d", strings.Count(svg, "<circle"))
	}
}

func TestRenderEmptyFails(t *testing.T) {
	var buf bytes.Buffer
	p := &Plot{Title: "empty"}
	if err := p.Render(&buf); err == nil {
		t.Fatal("empty plot should error")
	}
}

func TestRenderEscapesMarkup(t *testing.T) {
	p := samplePlot()
	p.Title = `<script>"x"&y</script>`
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>") {
		t.Fatal("markup not escaped")
	}
}

func TestRenderLegendForMultipleSeries(t *testing.T) {
	p := samplePlot()
	p.Series = append(p.Series, Series{Name: "baseline", Points: []Point{{X: 100, Y: 1}}})
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "baseline") {
		t.Fatal("legend missing second series")
	}
}

func TestTicksLog(t *testing.T) {
	ts := ticks(1, 10000, true)
	if len(ts) < 4 {
		t.Fatalf("log ticks = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if math.Abs(ts[i]/ts[i-1]-10) > 1e-9 {
			t.Fatalf("log ticks not decades: %v", ts)
		}
	}
}

func TestTicksLinear(t *testing.T) {
	ts := ticks(0, 100, false)
	if len(ts) < 3 || len(ts) > 12 {
		t.Fatalf("linear ticks = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("ticks not increasing: %v", ts)
		}
	}
}

func TestTickLabel(t *testing.T) {
	for v, want := range map[float64]string{
		0: "0", 5: "5", 1500: "1.5K", 2_000_000: "2M", 3_000_000_000: "3G",
		0.001: "0.001",
	} {
		if got := tickLabel(v); got != want {
			t.Errorf("tickLabel(%v) = %q want %q", v, got, want)
		}
	}
}

func TestFracClamping(t *testing.T) {
	p := &Plot{}
	if f := p.frac(5, 0, 10, false); f != 0.5 {
		t.Errorf("frac mid = %v", f)
	}
	if f := p.frac(-5, 0, 10, false); f != 0 {
		t.Errorf("frac below = %v", f)
	}
	if f := p.frac(50, 0, 10, false); f != 1 {
		t.Errorf("frac above = %v", f)
	}
	if f := p.frac(10, 1, 100, true); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("log frac = %v", f)
	}
}
