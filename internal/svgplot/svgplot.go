// Package svgplot renders the paper-style scatter plots (compressed
// space on x, operation time on y, one labeled point per method) as
// standalone SVG — stdlib only, no rendering dependencies. cmd/bvplot
// feeds it measurement CSV from the experiment harness so every figure
// of the evaluation can be regenerated as an actual figure.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one mark on a plot.
type Point struct {
	X, Y  float64
	Label string
}

// Series is a named group of points sharing a color.
type Series struct {
	Name   string
	Points []Point
}

// Plot describes one chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// LogX/LogY select logarithmic axes (points with non-positive
	// coordinates are clamped to the axis minimum).
	LogX, LogY bool
	// W and H are the pixel dimensions (defaults 640x440).
	W, H   int
	Series []Series
}

// palette holds visually distinct mark colors, cycled per series.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f",
}

const margin = 56

// Render writes the SVG document.
func (p *Plot) Render(w io.Writer) error {
	width, height := p.W, p.H
	if width == 0 {
		width = 640
	}
	if height == 0 {
		height = 440
	}
	minX, maxX, minY, maxY, ok := p.bounds()
	if !ok {
		return fmt.Errorf("svgplot: no points to plot")
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="15" font-family="sans-serif" text-anchor="middle" font-weight="bold">%s</text>`+"\n",
		width/2, escape(p.Title))

	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)
	sx := func(x float64) float64 {
		return margin + plotW*p.frac(x, minX, maxX, p.LogX)
	}
	sy := func(y float64) float64 {
		return float64(height-margin) - plotH*p.frac(y, minY, maxY, p.LogY)
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, margin, margin, height-margin)
	// Ticks.
	for _, t := range ticks(minX, maxX, p.LogX) {
		x := sx(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, height-margin, x, height-margin+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
			x, height-margin+18, tickLabel(t))
	}
	for _, t := range ticks(minY, maxY, p.LogY) {
		y := sy(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			margin-5, y, margin, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" font-family="sans-serif" text-anchor="end">%s</text>`+"\n",
			margin-8, y+3, tickLabel(t))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
		width/2, height-12, escape(p.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		height/2, height/2, escape(p.YLabel))

	// Marks and labels.
	for si, s := range p.Series {
		color := palette[si%len(palette)]
		for _, pt := range s.Points {
			x, y := sx(pt.X), sy(pt.Y)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s" fill-opacity="0.85"/>`+"\n",
				x, y, color)
			if pt.Label != "" {
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" font-family="sans-serif">%s</text>`+"\n",
					x+5, y-4, escape(pt.Label))
			}
		}
	}
	// Legend when several series exist.
	if len(p.Series) > 1 {
		for si, s := range p.Series {
			y := margin + 14*si
			fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="4" fill="%s"/>`+"\n",
				width-margin-110, y, palette[si%len(palette)])
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" font-family="sans-serif">%s</text>`+"\n",
				width-margin-100, y+4, escape(s.Name))
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// frac maps a value into [0, 1] within the axis range.
func (p *Plot) frac(v, lo, hi float64, logScale bool) float64 {
	if logScale {
		v = math.Log10(math.Max(v, lo))
		lo, hi = math.Log10(lo), math.Log10(hi)
	}
	if hi == lo {
		return 0.5
	}
	f := (v - lo) / (hi - lo)
	return math.Min(math.Max(f, 0), 1)
}

// bounds computes padded axis ranges across all series.
func (p *Plot) bounds() (minX, maxX, minY, maxY float64, ok bool) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, s := range p.Series {
		for _, pt := range s.Points {
			minX, maxX = math.Min(minX, pt.X), math.Max(maxX, pt.X)
			minY, maxY = math.Min(minY, pt.Y), math.Max(maxY, pt.Y)
		}
	}
	if math.IsInf(minX, 1) {
		return 0, 0, 0, 0, false
	}
	if p.LogX {
		minX = math.Max(minX, 1e-9)
		maxX = math.Max(maxX, minX*10)
	}
	if p.LogY {
		minY = math.Max(minY, 1e-9)
		maxY = math.Max(maxY, minY*10)
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	return minX, maxX, minY, maxY, true
}

// ticks places axis ticks: decades for log axes, ~5 even steps for
// linear ones.
func ticks(lo, hi float64, logScale bool) []float64 {
	var out []float64
	if logScale {
		lo = math.Max(lo, 1e-9)
		start := math.Floor(math.Log10(lo))
		end := math.Ceil(math.Log10(hi))
		for e := start; e <= end && len(out) < 12; e++ {
			out = append(out, math.Pow(10, e))
		}
		return out
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/4)))
	for _, m := range []float64{5, 2} {
		if span/(step*m) >= 3 {
			step *= m
			break
		}
	}
	for t := math.Ceil(lo/step) * step; t <= hi && len(out) < 12; t += step {
		out = append(out, t)
	}
	return out
}

// tickLabel compacts large tick values (1.5K, 2M, ...).
func tickLabel(v float64) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1e9:
		return trimZero(v/1e9) + "G"
	case abs >= 1e6:
		return trimZero(v/1e6) + "M"
	case abs >= 1e3:
		return trimZero(v/1e3) + "K"
	case abs >= 1 || v == 0:
		return trimZero(v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func trimZero(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	return strings.TrimSuffix(s, ".0")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
