// Package server wraps an index.Index behind a hardened HTTP stack: the
// production deployment shell for the §A.1 search workload. It provides
//
//   - lifecycle: an http.Server with read/write/idle timeouts, graceful
//     context-driven shutdown with a drain deadline, and /healthz
//     (liveness) plus /readyz (readiness) probes;
//   - a middleware chain: panic recovery, per-request timeouts,
//     semaphore load shedding (429 + Retry-After), structured request
//     logging, and request validation limits so adversarial queries
//     cannot force unbounded intersection work;
//   - hot reload: the served index lives in a reference-counted
//     index.Snapshot behind an atomic.Pointer and is swapped without
//     dropping in-flight requests, with rollback to the old index when
//     the replacement fails to load. Each request brackets its work in
//     Acquire/Release, so a superseded snapshot is Closed — releasing
//     its mmap — exactly once, after the last in-flight query drains.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hist"
	"repro/internal/index"
)

// Config tunes the hardened server. Zero values pick serving-safe
// defaults, so Config{} is a reasonable production starting point.
type Config struct {
	ReadTimeout    time.Duration // full-request read budget (default 5s)
	WriteTimeout   time.Duration // response write budget (default 10s)
	IdleTimeout    time.Duration // keep-alive idle budget (default 2m)
	RequestTimeout time.Duration // per-request handler budget (default 5s)
	DrainDeadline  time.Duration // graceful-shutdown budget (default 10s)

	MaxInFlight   int // concurrent requests before shedding with 429 (default 64)
	MaxQueryTerms int // query terms before 400 (default 16)
	MaxK          int // top-k limit before 400 (default 1000)
	MaxURLBytes   int // request-URI bytes before 414 (default 8192)

	// IngestQueue bounds concurrently admitted write requests in live
	// mode (NewLive); excess writes are shed with 429 (default 128).
	IngestQueue int

	// CacheBytes bounds the decoded-posting cache shared across index
	// generations: hot terms skip decompression on repeat queries, and
	// hot reloads invalidate stale entries by generation. Default
	// 32 MiB; negative disables caching.
	CacheBytes int

	Logger *log.Logger // defaults to log.Default()

	// Routes, when set, registers extra application routes (debug
	// handlers, pprof, ...) on the hardened mux. They run inside the
	// full middleware chain.
	Routes func(mux *http.ServeMux)
}

func (c Config) withDefaults() Config {
	def := func(d *time.Duration, v time.Duration) {
		if *d <= 0 {
			*d = v
		}
	}
	def(&c.ReadTimeout, 5*time.Second)
	def(&c.WriteTimeout, 10*time.Second)
	def(&c.IdleTimeout, 2*time.Minute)
	def(&c.RequestTimeout, 5*time.Second)
	def(&c.DrainDeadline, 10*time.Second)
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxQueryTerms <= 0 {
		c.MaxQueryTerms = 16
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxURLBytes <= 0 {
		c.MaxURLBytes = 8192
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 32 << 20
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	return c
}

// ingestQueue is the live-mode write-admission depth.
func (c Config) ingestQueue() int {
	if c.IngestQueue <= 0 {
		return 128
	}
	return c.IngestQueue
}

// Server serves queries over a hot-swappable compressed index.
type Server struct {
	cfg Config
	log *log.Logger

	snap     atomic.Pointer[index.Snapshot]
	cache    *index.DecodedCache
	ready    atomic.Bool
	draining atomic.Bool
	inFlight atomic.Int64
	reloads  atomic.Int64
	// generation numbers the served snapshot, starting at 1 for the
	// index the server booted with and bumping on every successful hot
	// swap. /stats exposes it so an observer (the chaos harness, a
	// sharded router's operator) can assert WHICH index version answered
	// during a reload storm, not merely how many swaps happened.
	generation atomic.Int64
	sem        chan struct{}

	// Serving-side observability, exposed on /stats: a latency
	// histogram over every completed request, per-status-class counters,
	// and the load-shed (429) counter the chaos harness asserts against.
	// All are lock-free so the hot path never serializes on metrics.
	latency  hist.Histogram
	sheds    atomic.Int64
	statuses [6]atomic.Int64 // index = status/100 (1xx..5xx; 0 unused)

	reloadMu sync.Mutex
	loadFn   func() (*index.Index, error)

	// Live-ingestion mode (NewLive): the mutable index being served and
	// the bounded write-admission gate. nil/unused in static mode.
	live        *index.Live
	ingestSem   chan struct{}
	ingestSheds atomic.Int64
}

// New returns a server that serves idx. idx must be non-nil.
func New(idx *index.Index, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		log: cfg.Logger,
		sem: make(chan struct{}, cfg.MaxInFlight),
	}
	if cfg.CacheBytes > 0 {
		s.cache = index.NewDecodedCache(cfg.CacheBytes)
		idx.AttachCache(s.cache)
	}
	s.snap.Store(index.NewSnapshot(idx))
	s.generation.Store(1)
	return s
}

// CacheStats reports decoded-posting cache effectiveness (zero value
// when caching is disabled).
func (s *Server) CacheStats() index.CacheStats {
	if s.cache == nil {
		return index.CacheStats{}
	}
	return s.cache.Stats()
}

// SetLoader installs the function Reload uses to load a replacement
// index. Call it before serving.
func (s *Server) SetLoader(fn func() (*index.Index, error)) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.loadFn = fn
}

// Index returns the index currently being served. The server's own
// reference keeps the current generation alive, so the pointer is safe
// to use for as long as it remains current; request handlers that may
// race a hot reload go through acquire instead.
func (s *Server) Index() *index.Index { return s.snap.Load().Index() }

// Snapshot returns the reference-counted handle on the current index
// generation. Diagnostics and tests only; handlers use acquire.
func (s *Server) Snapshot() *index.Snapshot { return s.snap.Load() }

// acquire takes a reference on the current snapshot for the duration of
// one request. Acquire can fail only in the narrow window where a
// snapshot was retired after we loaded the pointer but before we
// incremented its count — Reload stores the replacement before retiring
// the old generation, so a retry is guaranteed to observe a newer,
// live snapshot. The caller must Release the returned snapshot.
func (s *Server) acquire() *index.Snapshot {
	for {
		snap := s.snap.Load()
		if snap.Acquire() {
			return snap
		}
	}
}

// Ready reports whether the server is accepting application traffic
// (started and not draining).
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// Sheds reports how many requests were turned away with 429 by the
// load-shedding gate.
func (s *Server) Sheds() int64 { return s.sheds.Load() }

// LatencySummary reports request-latency percentiles over every
// completed request since startup.
func (s *Server) LatencySummary() hist.Summary { return s.latency.Summarize() }

// StatusCounts reports completed requests by status class ("2xx",
// "4xx", ...), omitting classes with no requests.
func (s *Server) StatusCounts() map[string]int64 {
	out := make(map[string]int64, 4)
	names := [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}
	for i := 1; i < len(s.statuses); i++ {
		if n := s.statuses[i].Load(); n > 0 {
			out[names[i]] = n
		}
	}
	return out
}

// observe records one completed request in the latency histogram and
// status counters; logRequests calls it for every request, probes
// included.
func (s *Server) observe(status int, d time.Duration) {
	s.latency.Record(d)
	if class := status / 100; class >= 1 && class <= 5 {
		s.statuses[class].Add(1)
	}
}

// Reloads reports how many successful hot swaps have happened.
func (s *Server) Reloads() int64 { return s.reloads.Load() }

// Generation reports the serial number of the snapshot being served:
// 1 for the boot index, +1 per successful hot swap. A failed reload
// (rollback) does not bump it — the old generation is still answering.
func (s *Server) Generation() int64 { return s.generation.Load() }

// Reload loads a replacement index through the configured loader and
// swaps it in atomically. In-flight requests keep whichever snapshot
// they started with; no request observes a half-swapped index. If the
// load fails (missing file, bad checksum, unknown version, decode
// error), the current index stays in place and the error is returned —
// that is the rollback path. The superseded snapshot is retired after
// the swap: once its in-flight queries drain, its index is Closed and
// any mmap it held is released.
func (s *Server) Reload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.loadFn == nil {
		return errors.New("server: no reload loader configured")
	}
	next, err := s.loadFn()
	if err != nil {
		s.log.Printf("server: reload failed, keeping current index: %v", err)
		return fmt.Errorf("server: reload: %w", err)
	}
	if next == nil {
		s.log.Printf("server: reload loader returned nil index, keeping current")
		return errors.New("server: reload: loader returned nil index")
	}
	if s.cache != nil {
		// The replacement index gets a fresh cache generation; decodes
		// belonging to any other generation are dropped eagerly. In-flight
		// requests still holding the old snapshot just miss the cache —
		// they can never observe entries from the wrong index.
		next.AttachCache(s.cache)
		defer s.cache.DropOtherGenerations(next.Generation())
	}
	old := s.snap.Swap(index.NewSnapshot(next))
	s.reloads.Add(1)
	s.generation.Add(1)
	oldIdx := old.Index()
	s.log.Printf("server: hot-reloaded index: %d docs, %d terms, %d compressed bytes (was %d docs, %d terms)",
		next.Docs(), next.Terms(), next.SizeBytes(), oldIdx.Docs(), oldIdx.Terms())
	// Drop the server's reference last: the replacement is already
	// published, so any acquire that loses the race against this retire
	// will retry onto the new snapshot.
	old.Retire()
	return nil
}

// Run listens on addr and serves until ctx is cancelled, then drains
// gracefully. It is the one call cmd/bvserve needs.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return s.Serve(ctx, ln)
}

// Serve serves on ln until ctx is cancelled, then stops accepting new
// connections, flips /readyz to not-ready, and drains in-flight
// requests for up to DrainDeadline before returning. A nil return
// means every in-flight request completed.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:      s.Handler(),
		ReadTimeout:  s.cfg.ReadTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
		IdleTimeout:  s.cfg.IdleTimeout,
		ErrorLog:     s.log,
	}
	s.draining.Store(false)
	s.ready.Store(true)
	s.log.Printf("server: listening on %s (max in-flight %d, request timeout %s)",
		ln.Addr(), s.cfg.MaxInFlight, s.cfg.RequestTimeout)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// The listener died underneath us; nothing to drain.
		s.ready.Store(false)
		return fmt.Errorf("server: serve: %w", err)
	case <-ctx.Done():
	}

	s.ready.Store(false)
	s.draining.Store(true)
	s.log.Printf("server: draining %d in-flight requests (deadline %s)",
		s.inFlight.Load(), s.cfg.DrainDeadline)
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainDeadline)
	defer cancel()
	err := srv.Shutdown(sctx)
	<-errc // srv.Serve has returned http.ErrServerClosed
	if err != nil {
		return fmt.Errorf("server: drain deadline exceeded: %w", err)
	}
	s.log.Printf("server: shutdown complete")
	return nil
}
