package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/index"
)

// Live-ingestion serving mode: instead of a static, hot-reloadable
// index snapshot, the server fronts an index.Live — the WAL-backed
// multi-segment mutable index — and additionally accepts writes:
//
//	POST /ingest  {"text": "..."}   -> {"doc": N}   (acked after fsync)
//	POST /delete  {"doc": N}        -> {"deleted": N}
//
// Reads (/search) scatter across the mutable segment and every sealed
// segment with deletions masked; an ack from /ingest means the
// document is durable — it survives kill -9 — and immediately visible.
// Writes pass through a bounded admission gate sized by
// Config.IngestQueue: when the gate is full the request is shed with
// 429 + Retry-After instead of queueing into a commit-latency
// collapse. POST /reload maps to a manual seal (flush the mutable
// segment to an immutable BVIX3 segment) so operators can force a
// flush without bouncing the process.

// NewLive returns a server in live-ingestion mode, serving and
// mutating l. The hot-reload loader machinery is disabled; /ingest,
// /delete, and the live /stats and /healthz shapes are enabled.
func NewLive(l *index.Live, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		log:  cfg.Logger,
		sem:  make(chan struct{}, cfg.MaxInFlight),
		live: l,
	}
	s.ingestSem = make(chan struct{}, cfg.ingestQueue())
	return s
}

// Live returns the live index being served, or nil in static mode.
func (s *Server) Live() *index.Live { return s.live }

// IngestSheds reports how many write requests were turned away with
// 429 by the ingest admission gate.
func (s *Server) IngestSheds() int64 { return s.ingestSheds.Load() }

// ingestGate admits one write request or sheds it. The returned
// release func is nil when the request was shed (and the 429 has
// already been written).
func (s *Server) ingestGate(w http.ResponseWriter) func() {
	select {
	case s.ingestSem <- struct{}{}:
		return func() { <-s.ingestSem }
	default:
		s.ingestSheds.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": "ingest queue full, retry later",
		})
		return nil
	}
}

// handleIngest appends one document. The 200 response carries the
// assigned docid and is written only after the WAL fsync — an acked
// ingest is durable.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "ingest requires POST"})
		return
	}
	release := s.ingestGate(w)
	if release == nil {
		return
	}
	defer release()
	var req struct {
		Text string `json:"text"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if len(index.Tokenize(req.Text)) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "text has no indexable terms"})
		return
	}
	doc, err := s.live.Add(req.Text)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"doc": doc})
}

// handleDelete tombstones one document; the ack is durable the same
// way an ingest ack is.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "delete requires POST"})
		return
	}
	release := s.ingestGate(w)
	if release == nil {
		return
	}
	defer release()
	var req struct {
		Doc *uint32 `json:"doc"`
	}
	if err := decodeBody(r, &req); err != nil || req.Doc == nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "body must be {\"doc\": N}"})
		return
	}
	switch err := s.live.Delete(*req.Doc); {
	case errors.Is(err, index.ErrNoSuchDoc):
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusOK, map[string]interface{}{"deleted": *req.Doc})
	}
}

// handleLiveSearch answers the same query surface as static /search,
// scattered across the live index's segments with deletions masked.
func (s *Server) handleLiveSearch(w http.ResponseWriter, r *http.Request) {
	terms := index.Tokenize(r.URL.Query().Get("q"))
	if len(terms) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing or empty q parameter"})
		return
	}
	if len(terms) > s.cfg.MaxQueryTerms {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("query has %d terms, limit is %d", len(terms), s.cfg.MaxQueryTerms),
		})
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "and"
	}
	resp := searchResponse{Query: terms, Mode: mode}
	switch mode {
	case "and":
		docs, err := s.live.Conjunctive(terms...)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		resp.Docs, resp.Matches = docs, len(docs)
	case "or":
		docs, err := s.live.Disjunctive(terms...)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		resp.Docs, resp.Matches = docs, len(docs)
	case "topk":
		k := 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			var err error
			if k, err = strconv.Atoi(ks); err != nil || k < 1 {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad k parameter"})
				return
			}
		}
		if k > s.cfg.MaxK {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("k=%d exceeds limit %d", k, s.cfg.MaxK),
			})
			return
		}
		ranked, err := s.live.TopK(k, terms...)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		resp.Ranked, resp.Matches = ranked, len(ranked)
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "mode must be and | or | topk"})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleLiveSeal is live mode's POST /reload: force-seal the mutable
// segment so its documents move to an immutable on-disk segment now.
func (s *Server) handleLiveSeal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "reload requires POST"})
		return
	}
	if err := s.live.Seal(); err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "sealed",
		"live":   s.live.Stats(),
	})
}

// handleLiveStats is /stats in live mode: serving-side gauges plus the
// per-segment live shape — segment count, WAL depth, seal/compaction
// recency — the operator dashboards and the chaos harness read.
func (s *Server) handleLiveStats(w http.ResponseWriter, r *http.Request) {
	st := s.live.Stats()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"documents":   st.VisibleDocs,
		"live":        st,
		"inFlight":    s.inFlight.Load(),
		"sheds":       s.Sheds(),
		"ingestSheds": s.IngestSheds(),
		"ready":       s.Ready(),
		"health":      s.live.Health(),
		"latency":     s.LatencySummary(),
		"statuses":    s.StatusCounts(),
	})
}

// handleLiveHealthz is the live-mode liveness probe. Degraded here
// means some sealed segment failed its checksums and is quarantined;
// the mutable segment (and every healthy sealed segment) is still
// serving and still accepting writes, and the taxonomy says so.
func (s *Server) handleLiveHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.live.Health()
	if !h.Degraded {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":              "degraded",
		"detail":              "sealed segment quarantined, mutable segment live",
		"quarantinedSegments": h.QuarantinedSegments,
		"mutableLive":         h.MutableLive,
	})
}

// decodeBody parses a small JSON request body, rejecting oversized or
// trailing input.
func decodeBody(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad JSON body: %v", err)
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}
