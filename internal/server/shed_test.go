package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadShedUnderConcurrency saturates the in-flight semaphore with
// handlers parked on a channel, then fires a burst of concurrent
// searches. Every shed response must be a 429 carrying Retry-After,
// and afterwards /stats must report exactly the observed shed count —
// the counters are atomics, so the whole test is meaningful under
// -race (CI runs this package with -race).
func TestLoadShedUnderConcurrency(t *testing.T) {
	const maxInFlight = 4
	release := make(chan struct{})
	var parked sync.WaitGroup
	parked.Add(maxInFlight)

	srv := New(buildIndex(t, "alpha beta", "beta gamma"), Config{
		MaxInFlight:    maxInFlight,
		RequestTimeout: 10 * time.Second,
		Routes: func(mux *http.ServeMux) {
			mux.HandleFunc("/park", func(w http.ResponseWriter, r *http.Request) {
				parked.Done()
				<-release
			})
		},
	})
	srv.ready.Store(true)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Fill every semaphore slot with a parked request.
	var fillers sync.WaitGroup
	for i := 0; i < maxInFlight; i++ {
		fillers.Add(1)
		go func() {
			defer fillers.Done()
			resp, err := http.Get(ts.URL + "/park")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	parked.Wait() // all slots held

	// Burst of concurrent searches: every one must shed with 429 +
	// Retry-After; none may block or get any other status.
	const burst = 64
	var shed atomic.Int64
	var burstWG sync.WaitGroup
	for i := 0; i < burst; i++ {
		burstWG.Add(1)
		go func() {
			defer burstWG.Done()
			resp, err := http.Get(ts.URL + "/search?q=alpha")
			if err != nil {
				t.Errorf("burst request failed: %v", err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Errorf("status = %d, want 429", resp.StatusCode)
				return
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After header")
				return
			}
			shed.Add(1)
		}()
	}
	burstWG.Wait()
	close(release)
	fillers.Wait()

	if shed.Load() != burst {
		t.Fatalf("shed %d of %d burst requests", shed.Load(), burst)
	}
	if got := srv.Sheds(); got != burst {
		t.Fatalf("Sheds() = %d, want %d", got, burst)
	}

	// /stats must agree with what the clients observed.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Sheds    int64            `json:"sheds"`
		Statuses map[string]int64 `json:"statuses"`
		Latency  struct {
			Count int64 `json:"count"`
		} `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Sheds != burst {
		t.Fatalf("/stats sheds = %d, want %d", stats.Sheds, burst)
	}
	// 429s are 4xx; the parked /park requests and this /stats call are
	// 2xx. Every completed request must be in the histogram.
	if stats.Statuses["4xx"] < burst {
		t.Fatalf("/stats statuses[4xx] = %d, want >= %d", stats.Statuses["4xx"], burst)
	}
	if stats.Latency.Count < burst {
		t.Fatalf("/stats latency count = %d, want >= %d", stats.Latency.Count, burst)
	}
}
