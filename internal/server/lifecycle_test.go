package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/index"
)

// writeIndexFile persists idx in the versioned checksummed format.
func writeIndexFile(t testing.TB, path string, idx *index.Index) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFullLifecycle is the issue's acceptance scenario end to end:
// start the server, serve a query, hot-reload to a new on-disk index
// via POST /reload with zero failed requests, then shut down
// gracefully within the drain deadline.
func TestFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	idxPath := filepath.Join(dir, "docs.idx")
	writeIndexFile(t, idxPath, buildIndex(t, testDocs...))

	load := func() (*index.Index, error) {
		f, err := os.Open(idxPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return index.Read(f)
	}
	first, err := load()
	if err != nil {
		t.Fatal(err)
	}
	s := New(first, Config{DrainDeadline: 5 * time.Second, Logger: quiet})
	s.SetLoader(load)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	getJSON := func(method, path string) (int, map[string]interface{}) {
		t.Helper()
		req, err := http.NewRequest(method, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		var body map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		return resp.StatusCode, body
	}

	// Wait for readiness.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := getJSON(http.MethodGet, "/readyz")
		if st == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Serve a query against the initial index.
	st, body := getJSON(http.MethodGet, "/search?q=compressed+bitmap")
	if st != http.StatusOK || body["matches"].(float64) != 1 {
		t.Fatalf("initial search = %d %v", st, body)
	}

	// Continuous traffic that must never see a failure across the swap.
	stopTraffic := make(chan struct{})
	trafficErr := make(chan error, 1)
	go func() {
		defer close(trafficErr)
		for {
			select {
			case <-stopTraffic:
				return
			default:
			}
			resp, err := http.Get(base + "/search?q=compressed&mode=topk&k=2")
			if err != nil {
				trafficErr <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				trafficErr <- fmt.Errorf("query failed with status %d during reload", resp.StatusCode)
				return
			}
		}
	}()

	// Rewrite the index file with more documents and hot-swap it in.
	writeIndexFile(t, idxPath, buildIndex(t, append(testDocs, "fresh document", "another fresh document")...))
	st, body = getJSON(http.MethodPost, "/reload")
	if st != http.StatusOK || body["docs"].(float64) != 5 {
		t.Fatalf("reload = %d %v", st, body)
	}
	st, body = getJSON(http.MethodGet, "/stats")
	if st != http.StatusOK || body["documents"].(float64) != 5 {
		t.Fatalf("stats after reload = %d %v", st, body)
	}

	close(stopTraffic)
	if err, failed := <-trafficErr; failed {
		t.Fatalf("request failed during hot reload: %v", err)
	}

	// Graceful shutdown within the drain deadline.
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve = %v, want clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown exceeded drain deadline")
	}
}

// TestReloadRollbackOnCorruptFile wires the checksummed persistence
// into the reload path: a corrupted index file fails verification with
// ErrChecksum and the server keeps serving the old snapshot.
func TestReloadRollbackOnCorruptFile(t *testing.T) {
	dir := t.TempDir()
	idxPath := filepath.Join(dir, "docs.idx")
	writeIndexFile(t, idxPath, buildIndex(t, testDocs...))
	load := func() (*index.Index, error) {
		f, err := os.Open(idxPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return index.Read(f)
	}
	first, err := load()
	if err != nil {
		t.Fatal(err)
	}
	s := New(first, Config{Logger: quiet})
	s.SetLoader(load)

	// Corrupt one payload byte on disk.
	raw, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(idxPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	err = s.Reload()
	if !errors.Is(err, core.ErrChecksum) {
		t.Fatalf("reload of corrupt file = %v, want ErrChecksum", err)
	}
	if s.Index() != first {
		t.Fatal("corrupt reload replaced the served index")
	}
	// Queries still work on the retained snapshot.
	docs, err := s.Index().Conjunctive("compressed", "bitmap")
	if err != nil || len(docs) != 1 {
		t.Fatalf("post-rollback query = %v, %v", docs, err)
	}
}
