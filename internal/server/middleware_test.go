package server

import (
	"bytes"
	"context"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMiddlewareChain is the table-driven hardening check from the
// issue: a panicking handler yields a 500 (not a crashed process), a
// handler that blows the request budget yields a timeout status, and a
// well-behaved handler passes through untouched.
func TestMiddlewareChain(t *testing.T) {
	cases := []struct {
		name       string
		handler    http.HandlerFunc
		wantStatus int
		wantBody   string
	}{
		{
			name:       "panic becomes 500",
			handler:    func(w http.ResponseWriter, r *http.Request) { panic("posting list exploded") },
			wantStatus: http.StatusInternalServerError,
			wantBody:   "internal server error",
		},
		{
			name: "slow handler times out",
			handler: func(w http.ResponseWriter, r *http.Request) {
				time.Sleep(300 * time.Millisecond)
				w.Write([]byte("too late"))
			},
			wantStatus: http.StatusGatewayTimeout,
			wantBody:   "budget",
		},
		{
			name: "fast handler passes through",
			handler: func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("X-From-Handler", "yes")
				w.WriteHeader(http.StatusTeapot)
				w.Write([]byte("ok"))
			},
			wantStatus: http.StatusTeapot,
			wantBody:   "ok",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var logBuf bytes.Buffer
			s := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond, Logger: log.New(&logBuf, "", 0)})
			h := s.hardened(tc.handler)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
			if rec.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d", rec.Code, tc.wantStatus)
			}
			if !strings.Contains(rec.Body.String(), tc.wantBody) {
				t.Fatalf("body %q, want substring %q", rec.Body.String(), tc.wantBody)
			}
			if !strings.Contains(logBuf.String(), "status=") {
				t.Fatalf("request was not logged: %q", logBuf.String())
			}
			if tc.name == "panic becomes 500" && !strings.Contains(logBuf.String(), "panic serving") {
				t.Fatalf("panic stack was not logged: %q", logBuf.String())
			}
			if tc.name == "fast handler passes through" && rec.Header().Get("X-From-Handler") != "yes" {
				t.Fatal("handler headers were not flushed through the timeout buffer")
			}
		})
	}
}

// TestLoadShedding checks the semaphore gate: with N slots occupied,
// the (N+1)-th concurrent request is shed with 429 + Retry-After, and
// capacity freed by a finishing request is reusable.
func TestLoadShedding(t *testing.T) {
	const n = 2
	s := newTestServer(t, Config{MaxInFlight: n, RequestTimeout: 5 * time.Second})
	entered := make(chan struct{}, n)
	release := make(chan struct{})
	h := s.hardened(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.Write([]byte("done"))
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL)
			if err != nil {
				t.Errorf("occupying request: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	for i := 0; i < n; i++ {
		<-entered // all N slots are genuinely in-flight
	}

	resp, err := http.Get(ts.URL) // the (N+1)-th
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("(N+1)-th request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	close(release)
	wg.Wait()
	for i := 0; i < n; i++ {
		if c := <-codes; c != http.StatusOK {
			t.Fatalf("occupying request finished with %d", c)
		}
	}
	// Capacity is back: the next request succeeds.
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after release: status %d", resp.StatusCode)
	}
}

// TestGracefulShutdownCompletesInFlight starts a real listener, parks a
// request inside a slow handler, cancels the serve context, and
// asserts the in-flight request still completes with 200 while Serve
// returns nil within the drain deadline.
func TestGracefulShutdownCompletesInFlight(t *testing.T) {
	entered := make(chan struct{})
	s := newTestServer(t, Config{
		RequestTimeout: 5 * time.Second,
		DrainDeadline:  5 * time.Second,
		Routes: func(mux *http.ServeMux) {
			mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
				close(entered)
				time.Sleep(250 * time.Millisecond)
				w.Write([]byte(`"survived the drain"`))
			})
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	body := make(chan string, 1)
	status := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			status <- -1
			body <- err.Error()
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
		body <- string(b)
	}()

	<-entered // the request is in-flight
	cancel()  // begin graceful shutdown while it runs

	if st := <-status; st != http.StatusOK {
		t.Fatalf("in-flight request during shutdown: status %d, body %q", st, <-body)
	}
	if b := <-body; !strings.Contains(b, "survived") {
		t.Fatalf("in-flight response truncated: %q", b)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil (clean drain)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return within the drain deadline")
	}
	// The listener is closed: new connections fail.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestDrainDeadlineExceeded: a handler slower than the drain budget
// forces Serve to give up and report it.
func TestDrainDeadlineExceeded(t *testing.T) {
	entered := make(chan struct{})
	s := newTestServer(t, Config{
		RequestTimeout: 10 * time.Second,
		WriteTimeout:   10 * time.Second,
		DrainDeadline:  100 * time.Millisecond,
		Routes: func(mux *http.ServeMux) {
			mux.HandleFunc("/glacial", func(w http.ResponseWriter, r *http.Request) {
				close(entered)
				time.Sleep(2 * time.Second)
			})
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	go http.Get("http://" + ln.Addr().String() + "/glacial")
	<-entered
	cancel()
	select {
	case err := <-served:
		if err == nil {
			t.Fatal("Serve returned nil despite a request outliving the drain deadline")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve hung past the drain deadline")
	}
}
