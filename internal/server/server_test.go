package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/codecs"
	"repro/internal/index"
)

// quiet is a logger for tests that don't inspect log output.
var quiet = log.New(io.Discard, "", 0)

func buildIndex(t testing.TB, docs ...string) *index.Index {
	t.Helper()
	codec, err := codecs.ByName("Roaring")
	if err != nil {
		t.Fatal(err)
	}
	b := index.NewBuilder(codec)
	for _, d := range docs {
		b.AddDocument(d)
	}
	idx, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

var testDocs = []string{
	"compressed bitmap indexes",
	"compressed inverted lists",
	"bitmap and inverted list compression compression",
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quiet
	}
	return New(buildIndex(t, testDocs...), cfg)
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	return request(t, h, http.MethodGet, path)
}

func request(t *testing.T, h http.Handler, method, path string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(method, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]interface{}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("%s %s: bad JSON %q: %v", method, path, rec.Body.String(), err)
	}
	return rec, body
}

func TestSearchAnd(t *testing.T) {
	h := newTestServer(t, Config{}).Handler()
	rec, body := get(t, h, "/search?q=compressed+bitmap&mode=and")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	docs := body["docs"].([]interface{})
	if len(docs) != 1 || docs[0].(float64) != 0 {
		t.Fatalf("docs = %v", docs)
	}
}

func TestSearchOrAndDefaults(t *testing.T) {
	h := newTestServer(t, Config{}).Handler()
	_, body := get(t, h, "/search?q=lists+indexes&mode=or")
	if body["matches"].(float64) != 2 {
		t.Fatalf("matches = %v", body["matches"])
	}
	// Default mode is AND.
	_, body = get(t, h, "/search?q=compressed")
	if body["mode"] != "and" || body["matches"].(float64) != 2 {
		t.Fatalf("default mode body = %v", body)
	}
}

func TestSearchTopK(t *testing.T) {
	h := newTestServer(t, Config{}).Handler()
	rec, body := get(t, h, "/search?q=compression&mode=topk&k=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	ranked := body["ranked"].([]interface{})
	if len(ranked) != 1 {
		t.Fatalf("ranked = %v", ranked)
	}
	top := ranked[0].(map[string]interface{})
	if top["Doc"].(float64) != 2 || top["Score"].(float64) != 2 {
		t.Fatalf("top = %v", top)
	}
}

func TestSearchErrors(t *testing.T) {
	h := newTestServer(t, Config{MaxQueryTerms: 4, MaxK: 50}).Handler()
	for _, path := range []string{
		"/search",                      // missing q
		"/search?q=x&mode=banana",      // bad mode
		"/search?q=x&mode=topk&k=zero", // bad k
		"/search?q=...&mode=and",       // tokenizes to nothing
		"/search?q=a+b+c+d+e",          // more than MaxQueryTerms terms
		"/search?q=x&mode=topk&k=51",   // k over MaxK
	} {
		rec, _ := get(t, h, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}

func TestURLTooLong(t *testing.T) {
	h := newTestServer(t, Config{MaxURLBytes: 64}).Handler()
	rec, _ := get(t, h, "/search?q="+strings.Repeat("x", 100))
	if rec.Code != http.StatusRequestURITooLong {
		t.Fatalf("status %d, want 414", rec.Code)
	}
}

func TestStats(t *testing.T) {
	h := newTestServer(t, Config{}).Handler()
	rec, body := get(t, h, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if body["documents"].(float64) != 3 || body["terms"].(float64) == 0 {
		t.Fatalf("stats = %v", body)
	}
	if body["reloads"].(float64) != 0 || body["ready"].(bool) {
		t.Fatalf("serving gauges = %v", body)
	}
	// The boot snapshot is generation 1; /stats must name it so an
	// observer can tell which index version answered.
	if body["generation"].(float64) != 1 {
		t.Fatalf("boot generation = %v, want 1", body["generation"])
	}
}

func TestProbes(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	rec, _ := get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	// Not serving yet: readyz says starting.
	rec, body := get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || body["status"] != "starting" {
		t.Fatalf("readyz before start = %d %v", rec.Code, body)
	}
	s.ready.Store(true)
	rec, _ = get(t, h, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz while serving = %d", rec.Code)
	}
	s.draining.Store(true)
	rec, body = get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("readyz while draining = %d %v", rec.Code, body)
	}
}

func TestReloadSwapsAtomically(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	// GET is not allowed.
	rec, _ := get(t, h, "/reload")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reload = %d, want 405", rec.Code)
	}
	// No loader configured.
	rec, body := request(t, h, http.MethodPost, "/reload")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("POST without loader = %d %v", rec.Code, body)
	}

	bigger := buildIndex(t, append(testDocs, "two extra", "documents here")...)
	s.SetLoader(func() (*index.Index, error) { return bigger, nil })
	rec, body = request(t, h, http.MethodPost, "/reload")
	if rec.Code != http.StatusOK || body["docs"].(float64) != 5 {
		t.Fatalf("POST /reload = %d %v", rec.Code, body)
	}
	if s.Index() != bigger || s.Reloads() != 1 {
		t.Fatal("reload did not swap the served index")
	}
	if body["generation"].(float64) != 2 || s.Generation() != 2 {
		t.Fatalf("generation after one swap = %v / %d, want 2", body["generation"], s.Generation())
	}
	// The new index serves immediately.
	_, body = get(t, h, "/stats")
	if body["documents"].(float64) != 5 {
		t.Fatalf("stats after reload = %v", body)
	}
	if body["generation"].(float64) != 2 {
		t.Fatalf("stats generation after reload = %v, want 2", body["generation"])
	}
}

func TestReloadRollsBackOnError(t *testing.T) {
	s := newTestServer(t, Config{})
	before := s.Index()
	s.SetLoader(func() (*index.Index, error) { return nil, fmt.Errorf("disk: %w", errors.New("checksum mismatch")) })
	if err := s.Reload(); err == nil {
		t.Fatal("reload with failing loader succeeded")
	}
	if s.Index() != before || s.Reloads() != 0 {
		t.Fatal("failed reload must keep the old index in place")
	}
	if s.Generation() != 1 {
		t.Fatalf("failed reload bumped generation to %d; the old snapshot is still answering", s.Generation())
	}
	// Nil index from a buggy loader is also a rollback, not a swap.
	s.SetLoader(func() (*index.Index, error) { return nil, nil })
	if err := s.Reload(); err == nil {
		t.Fatal("nil index accepted")
	}
	if s.Index() != before {
		t.Fatal("nil index replaced the served index")
	}
}

// TestConcurrentSearchReload is the -race acceptance check: searches
// and hot reloads running in parallel must all succeed with no data
// race, because each request works on one atomic snapshot.
func TestConcurrentSearchReload(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 128})
	alt := buildIndex(t, append(testDocs, "alternate snapshot")...)
	flip := false
	s.SetLoader(func() (*index.Index, error) {
		flip = !flip // guarded by the reload mutex
		if flip {
			return alt, nil
		}
		return buildIndex(t, testDocs...), nil
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				resp, err := http.Get(ts.URL + "/search?q=compressed&mode=topk&k=3")
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("search status %d during reload churn", resp.StatusCode)
					return
				}
			}
		}()
	}
	for r := 0; r < 20; r++ {
		if err := s.Reload(); err != nil {
			t.Fatalf("reload %d: %v", r, err)
		}
	}
	wg.Wait()
	if s.Reloads() != 20 {
		t.Fatalf("reloads = %d, want 20", s.Reloads())
	}
}

// TestReloadInvalidatesPostingCache: entries decoded against the old
// index generation are dropped on hot reload, and the replacement index
// repopulates the same shared cache under its own generation.
func TestReloadInvalidatesPostingCache(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	// OR queries go through the decoded-posting cache; warm it.
	rec, _ := get(t, h, "/search?q=compressed+bitmap&mode=or")
	if rec.Code != http.StatusOK {
		t.Fatalf("warm-up search = %d", rec.Code)
	}
	warm := s.CacheStats()
	if warm.Entries == 0 || warm.Misses == 0 {
		t.Fatalf("cache not populated by OR query: %+v", warm)
	}

	s.SetLoader(func() (*index.Index, error) { return buildIndex(t, testDocs...), nil })
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("old-generation entries survived reload: %+v", st)
	}

	// The new index fills the cache again and serves hits from it.
	for i := 0; i < 2; i++ {
		if rec, _ := get(t, h, "/search?q=compressed+bitmap&mode=or"); rec.Code != http.StatusOK {
			t.Fatalf("post-reload search = %d", rec.Code)
		}
	}
	after := s.CacheStats()
	if after.Entries == 0 || after.Hits <= warm.Hits {
		t.Fatalf("cache not repopulated after reload: %+v", after)
	}

	// A disabled cache keeps the endpoints working with zero stats.
	off := New(buildIndex(t, testDocs...), Config{CacheBytes: -1, Logger: quiet})
	if rec, _ := get(t, off.Handler(), "/search?q=compressed&mode=or"); rec.Code != http.StatusOK {
		t.Fatalf("cacheless search = %d", rec.Code)
	}
	if st := off.CacheStats(); st != (index.CacheStats{}) {
		t.Fatalf("disabled cache reported activity: %+v", st)
	}
}

// TestTwoConsecutiveReloadsInvalidateCache: the cache generation logic
// must hold up across back-to-back hot swaps, not just one. Three index
// versions map the same term to different documents; after each reload
// the served answer must come from the new index, never from a decode
// cached under an earlier generation. Concurrent queriers run
// throughout (exercised under -race in CI) and every response they see
// must match exactly one complete version — no half-swapped or
// cross-generation results. The middle generation is loaded through the
// lazy mmap-backed BVIX3 path to prove cache invalidation composes with
// zero-copy open; superseded snapshots are not Closed, mirroring how
// bvserve leaves old mappings to the kernel.
func TestTwoConsecutiveReloadsInvalidateCache(t *testing.T) {
	versions := [][]string{
		{"marker one", "filler text"},
		{"filler text", "marker two"},
		{"filler text", "filler again", "marker three"},
	}
	wantDoc := []float64{0, 1, 2} // where "marker" lives in each version

	s := New(buildIndex(t, versions[0]...), Config{Logger: quiet})
	h := s.Handler()

	markerDoc := func() float64 {
		t.Helper()
		rec, body := get(t, h, "/search?q=marker&mode=or")
		if rec.Code != http.StatusOK {
			t.Fatalf("search = %d", rec.Code)
		}
		docs := body["docs"].([]interface{})
		if len(docs) != 1 {
			t.Fatalf("marker docs = %v", docs)
		}
		return docs[0].(float64)
	}

	// Warm the v0 generation: second query must be a cache hit.
	markerDoc()
	if got := markerDoc(); got != wantDoc[0] {
		t.Fatalf("v0 marker doc = %v, want %v", got, wantDoc[0])
	}
	if st := s.CacheStats(); st.Hits == 0 {
		t.Fatalf("v0 queries never hit the cache: %+v", st)
	}

	// Queriers hammer the endpoint across both swaps. Each response must
	// be exactly one version's answer — a stale cached decode would show
	// up as a marker doc ID that no longer exists in the served index.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=marker&mode=or", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("concurrent search = %d", rec.Code)
					return
				}
				var body struct{ Docs []float64 }
				if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
					t.Errorf("concurrent search body: %v", err)
					return
				}
				if len(body.Docs) != 1 || (body.Docs[0] != 0 && body.Docs[0] != 1 && body.Docs[0] != 2) {
					t.Errorf("cross-generation result: %v", body.Docs)
					return
				}
			}
		}()
	}

	gens := []uint64{s.Index().Generation()}
	for i, docs := range [][]string{versions[1], versions[2]} {
		docs := docs
		lazy := i == 0 // load v1 via the mmap-backed zero-copy path
		s.SetLoader(func() (*index.Index, error) {
			if !lazy {
				return buildIndex(t, docs...), nil
			}
			path := filepath.Join(t.TempDir(), "v.idx")
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			if _, err := buildIndex(t, docs...).WriteBVIX3(f); err != nil {
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			return index.OpenFile(path)
		})
		if err := s.Reload(); err != nil {
			t.Fatal(err)
		}
		gens = append(gens, s.Index().Generation())
		// Cold read from the new generation, then a warm one: both must
		// answer from the freshly swapped index.
		for pass := 0; pass < 2; pass++ {
			if got := markerDoc(); got != wantDoc[i+1] {
				t.Fatalf("after reload %d pass %d: marker doc = %v, want %v", i+1, pass, got, wantDoc[i+1])
			}
		}
	}
	close(stop)
	wg.Wait()

	if gens[0] == gens[1] || gens[1] == gens[2] || gens[0] == gens[2] {
		t.Fatalf("generations not distinct across reloads: %v", gens)
	}
	if got := s.Reloads(); got != 2 {
		t.Fatalf("Reloads = %d, want 2", got)
	}
	// Only the final generation may own cache entries.
	st := s.CacheStats()
	if st.Entries == 0 {
		t.Fatalf("final generation has no cached decodes: %+v", st)
	}
}

// TestStatsExposesPostingCache: /stats carries the cache counters.
func TestStatsExposesPostingCache(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	get(t, h, "/search?q=compressed+bitmap&mode=or")
	_, body := get(t, h, "/stats")
	pc, ok := body["postingCache"].(map[string]interface{})
	if !ok {
		t.Fatalf("stats missing postingCache: %v", body)
	}
	if pc["entries"].(float64) == 0 {
		t.Fatalf("postingCache shows no entries after OR query: %v", pc)
	}
}
