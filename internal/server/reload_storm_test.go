package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/index"
)

// writeBVIX3File persists idx and returns the path, for loaders that
// exercise the mmap-backed open path.
func writeBVIX3File(t testing.TB, dir string, n int, idx *index.Index) string {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("gen%d.bvix3", n))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteBVIX3(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReloadStormClosesSupersededSnapshots is the retire-after-drain
// proof for the snapshot lifecycle: a storm of queries races many hot
// reloads of mmap-backed indexes, and every superseded generation must
// end with refcount zero and its Close run exactly once — the mapping
// leak hot reload used to carry is gone. Run with -race.
func TestReloadStormClosesSupersededSnapshots(t *testing.T) {
	const reloads = 20
	dir := t.TempDir()

	var closes atomic.Int64
	var loads atomic.Int64
	loader := func() (*index.Index, error) {
		n := loads.Add(1)
		docs := append(append([]string{}, testDocs...), fmt.Sprintf("generation %d marker", n))
		path := writeBVIX3File(t, dir, int(n), buildIndex(t, docs...))
		idx, err := index.OpenFile(path)
		if err != nil {
			return nil, err
		}
		idx.OnClose(func() { closes.Add(1) })
		return idx, nil
	}

	s := newTestServer(t, Config{MaxInFlight: 256})
	s.SetLoader(loader)
	h := s.Handler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=compressed+bitmap&mode=or", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("storm query status = %d", rec.Code)
					return
				}
				var body struct{ Matches int }
				if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
					t.Errorf("storm query body: %v", err)
					return
				}
				if body.Matches == 0 {
					t.Error("storm query matched nothing")
					return
				}
			}
		}()
	}

	superseded := make([]*index.Snapshot, 0, reloads)
	for i := 0; i < reloads; i++ {
		superseded = append(superseded, s.Snapshot())
		if err := s.Reload(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	for i, snap := range superseded {
		if !snap.Closed() {
			t.Errorf("superseded snapshot %d not closed after drain (refs=%d)", i, snap.Refs())
			continue
		}
		if got := snap.Refs(); got != 0 {
			t.Errorf("superseded snapshot %d refs = %d, want 0", i, got)
		}
		if err := snap.CloseErr(); err != nil {
			t.Errorf("superseded snapshot %d close error: %v", i, err)
		}
	}
	if got := closes.Load(); got != reloads-1 {
		// The first loader index supersedes the built-in seed (which has
		// no counter); of the `reloads` counted indexes, all but the
		// still-current last one must have closed exactly once.
		t.Errorf("OnClose ran %d times, want %d", got, reloads-1)
	}
	cur := s.Snapshot()
	if cur.Closed() || cur.Refs() < 1 {
		t.Fatalf("current snapshot unhealthy: closed=%v refs=%d", cur.Closed(), cur.Refs())
	}
	if got := s.Index().Terms(); got == 0 {
		t.Fatalf("current index serves no terms")
	}
}

// TestHealthzReportsDegradedIndex: a server handed a degraded index
// surfaces the quarantine summary on /healthz.
func TestHealthzReportsDegradedIndex(t *testing.T) {
	idx := buildIndex(t, testDocs...)
	path := writeBVIX3File(t, t.TempDir(), 0, idx)
	file, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the frames section (its offset lives at
	// header byte 44); frames are rebuilt, so nothing is quarantined
	// but the index reports degraded.
	framesOff := int(file[44]) | int(file[45])<<8 // offsets are tiny here
	file[framesOff+1] ^= 0x10
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}
	deg, err := index.OpenFileDegraded(path)
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Health().Degraded {
		t.Fatal("test setup: index did not open degraded")
	}
	s := New(deg, Config{Logger: quiet})
	rec, body := get(t, s.Handler(), "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded healthz status = %d, want 200", rec.Code)
	}
	if body["status"] != "degraded" {
		t.Fatalf("degraded healthz body = %v", body)
	}
	secs, ok := body["quarantinedSections"].([]interface{})
	if !ok || len(secs) != 1 || secs[0] != "frames" {
		t.Fatalf("quarantinedSections = %v", body["quarantinedSections"])
	}

	// A healthy index keeps the plain liveness shape.
	ok2 := newTestServer(t, Config{})
	rec2, body2 := get(t, ok2.Handler(), "/healthz")
	if rec2.Code != http.StatusOK || body2["status"] != "ok" {
		t.Fatalf("healthy healthz = %d %v", rec2.Code, body2)
	}
}
