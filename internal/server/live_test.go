package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/index"
)

func newLiveServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	l, err := index.OpenLive(t.TempDir(), index.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	s := NewLive(l, cfg)
	s.ready.Store(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, map[string]interface{}) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if len(buf.Bytes()) > 0 {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("bad JSON %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, out
}

func TestLiveServerIngestSearchDelete(t *testing.T) {
	_, ts := newLiveServer(t, Config{})

	// Ingest three documents; each ack carries the assigned docid.
	ids := make([]float64, 0, 3)
	for i, text := range []string{"alpha beta", "beta gamma", "alpha gamma delta"} {
		code, out := postJSON(t, ts.URL+"/ingest", fmt.Sprintf(`{"text": %q}`, text))
		if code != http.StatusOK {
			t.Fatalf("ingest %d: status %d (%v)", i, code, out)
		}
		ids = append(ids, out["doc"].(float64))
	}
	if ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("docids %v, want [0 1 2]", ids)
	}

	get := func(path string) (int, map[string]interface{}) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	if code, out := get("/search?q=alpha&mode=and"); code != 200 || out["matches"].(float64) != 2 {
		t.Fatalf("search alpha: %d %v", code, out)
	}
	if code, out := get("/search?q=alpha+beta&mode=or"); code != 200 || out["matches"].(float64) != 3 {
		t.Fatalf("search or: %d %v", code, out)
	}
	if code, out := get("/search?q=gamma&mode=topk&k=2"); code != 200 || out["matches"].(float64) != 2 {
		t.Fatalf("search topk: %d %v", code, out)
	}

	// Delete doc 1 and verify it stops matching.
	if code, out := postJSON(t, ts.URL+"/delete", `{"doc": 1}`); code != 200 {
		t.Fatalf("delete: %d %v", code, out)
	}
	if code, out := get("/search?q=beta&mode=and"); code != 200 || out["matches"].(float64) != 1 {
		t.Fatalf("search after delete: %d %v", code, out)
	}
	if code, _ := postJSON(t, ts.URL+"/delete", `{"doc": 1}`); code != http.StatusNotFound {
		t.Fatalf("double delete: status %d, want 404", code)
	}
	if code, _ := postJSON(t, ts.URL+"/delete", `{"nope": true}`); code != http.StatusBadRequest {
		t.Fatalf("malformed delete: status %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/ingest", `{"text": "   "}`); code != http.StatusBadRequest {
		t.Fatalf("empty ingest: status %d, want 400", code)
	}

	// /reload force-seals; the answers must not move.
	if code, out := postJSON(t, ts.URL+"/reload", ""); code != 200 || out["status"] != "sealed" {
		t.Fatalf("seal: %d %v", code, out)
	}
	if code, out := get("/search?q=alpha&mode=and"); code != 200 || out["matches"].(float64) != 2 {
		t.Fatalf("search after seal: %d %v", code, out)
	}

	// /stats carries the live gauges; /healthz is ok.
	if code, out := get("/stats"); code != 200 {
		t.Fatalf("stats: %d", code)
	} else {
		live := out["live"].(map[string]interface{})
		if live["segments"].(float64) != 1 || out["documents"].(float64) != 2 {
			t.Fatalf("stats live shape: %v", out)
		}
	}
	if code, out := get("/healthz"); code != 200 || out["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, out)
	}

	// GET on a write endpoint is rejected.
	if code, _ := get("/ingest"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: status %d, want 405", code)
	}
}

// TestLiveServerIngestShed fills the write-admission gate and requires
// the overflow request to be shed with 429 + Retry-After.
func TestLiveServerIngestShed(t *testing.T) {
	s, ts := newLiveServer(t, Config{IngestQueue: 1})
	// Occupy the single admission slot directly, then send a request.
	s.ingestSem <- struct{}{}
	resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(`{"text": "alpha"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if s.IngestSheds() != 1 {
		t.Fatalf("ingestSheds = %d, want 1", s.IngestSheds())
	}
	<-s.ingestSem
	if code, _ := postJSON(t, ts.URL+"/ingest", `{"text": "alpha"}`); code != 200 {
		t.Fatalf("ingest after gate freed: status %d", code)
	}
}

// TestLiveServerDurableAcrossRestart acks writes through the HTTP
// surface, tears the server down, and requires a fresh server over the
// same directory to serve every acked write.
func TestLiveServerDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	l, err := index.OpenLive(dir, index.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewLive(l, Config{})
	s.ready.Store(true)
	ts := httptest.NewServer(s.Handler())
	for _, text := range []string{"alpha beta", "beta gamma"} {
		if code, out := postJSON(t, ts.URL+"/ingest", fmt.Sprintf(`{"text": %q}`, text)); code != 200 {
			t.Fatalf("ingest: %d %v", code, out)
		}
	}
	ts.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := index.OpenLive(dir, index.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	s2 := NewLive(l2, Config{})
	s2.ready.Store(true)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/search?q=beta&mode=and")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["matches"].(float64) != 2 {
		t.Fatalf("restarted server lost acked writes: %v", out)
	}
}
