package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"
)

// statusWriter records the status code a handler writes so the logging
// middleware can report it.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.status, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(p)
}

// logRequests emits one structured line per request: method, path,
// status, latency, and the in-flight count at completion. It is also
// the metrics tap: every completed request lands in the latency
// histogram and status-class counters behind /stats.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		s.observe(sw.status, elapsed)
		s.log.Printf("server: %s %s status=%d latency=%s inflight=%d",
			r.Method, r.URL.Path, sw.status, elapsed.Round(time.Microsecond), s.inFlight.Load())
	})
}

// recoverPanics converts a handler panic into a 500 with a logged stack
// instead of a crashed process. http.ErrAbortHandler keeps its net/http
// meaning (abort the connection silently).
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			if !sw.wrote {
				writeJSON(sw, http.StatusInternalServerError, map[string]string{"error": "internal server error"})
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// validateURL rejects oversized request URIs before any routing work.
func (s *Server) validateURL(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if len(r.URL.RequestURI()) > s.cfg.MaxURLBytes {
			writeJSON(w, http.StatusRequestURITooLong, map[string]string{
				"error": fmt.Sprintf("request URI exceeds %d bytes", s.cfg.MaxURLBytes),
			})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// limitConcurrency is the load-shedding gate: at most MaxInFlight
// requests run at once; the (N+1)-th is turned away immediately with
// 429 + Retry-After rather than queued into a latency collapse.
func (s *Server) limitConcurrency(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			s.inFlight.Add(1)
			defer func() {
				s.inFlight.Add(-1)
				<-s.sem
			}()
			next.ServeHTTP(w, r)
		default:
			s.sheds.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, map[string]string{
				"error": fmt.Sprintf("server at capacity (%d in-flight requests)", s.cfg.MaxInFlight),
			})
		}
	})
}

// withRequestTimeout bounds each request to RequestTimeout via
// context.WithTimeout. The handler runs against a buffered response; if
// it beats the deadline the buffer is flushed to the client, otherwise
// the client gets 504 and the late response is discarded. Handler
// panics propagate so recoverPanics sees them.
func (s *Server) withRequestTimeout(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		done := make(chan struct{})
		panicc := make(chan any, 1)
		buf := &bufferedResponse{header: http.Header{}, status: http.StatusOK}
		go func() {
			defer func() {
				if p := recover(); p != nil {
					panicc <- p
				}
			}()
			next.ServeHTTP(buf, r)
			close(done)
		}()
		select {
		case <-done:
			buf.flushTo(w)
		case p := <-panicc:
			panic(p)
		case <-ctx.Done():
			writeJSON(w, http.StatusGatewayTimeout, map[string]string{
				"error": fmt.Sprintf("request exceeded %s budget", s.cfg.RequestTimeout),
			})
		}
	})
}

// bufferedResponse is the in-memory ResponseWriter used by the timeout
// middleware. It is owned by exactly one goroutine at a time — the
// handler goroutine while running, then (only on the non-timeout path,
// after a channel synchronization) the flusher.
type bufferedResponse struct {
	header http.Header
	status int
	wrote  bool
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if !b.wrote {
		b.status, b.wrote = code, true
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if !b.wrote {
		b.status, b.wrote = http.StatusOK, true
	}
	return b.body.Write(p)
}

func (b *bufferedResponse) flushTo(w http.ResponseWriter) {
	for k, vs := range b.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(b.status)
	if b.body.Len() > 0 {
		if _, err := w.Write(b.body.Bytes()); err != nil {
			// The client went away; nothing useful to do.
			_ = err
		}
	}
}

// hardened wraps an application handler in the full middleware chain,
// outermost first: logging, panic recovery, URL validation, load
// shedding, per-request timeout.
func (s *Server) hardened(app http.Handler) http.Handler {
	h := s.withRequestTimeout(app)
	h = s.limitConcurrency(h)
	h = s.validateURL(h)
	h = s.recoverPanics(h)
	h = s.logRequests(h)
	return h
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The connection is gone; the logging middleware still records
		// the intended status.
		_ = err
	}
}
