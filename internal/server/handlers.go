package server

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/index"
	"repro/internal/ops"
)

// Handler builds the full route set. Application routes (/search,
// /stats, /reload, Config.Routes) run inside the validation, load
// shedding, and timeout middleware; the probes /healthz and /readyz
// bypass those gates so they stay answerable under full load. Logging
// and panic recovery wrap everything.
func (s *Server) Handler() http.Handler {
	app := http.NewServeMux()
	if s.live != nil {
		app.HandleFunc("/search", s.handleLiveSearch)
		app.HandleFunc("/stats", s.handleLiveStats)
		app.HandleFunc("/reload", s.handleLiveSeal)
		app.HandleFunc("/ingest", s.handleIngest)
		app.HandleFunc("/delete", s.handleDelete)
	} else {
		app.HandleFunc("/search", s.handleSearch)
		app.HandleFunc("/stats", s.handleStats)
		app.HandleFunc("/reload", s.handleReload)
	}
	if s.cfg.Routes != nil {
		s.cfg.Routes(app)
	}
	inner := s.withRequestTimeout(app)
	inner = s.limitConcurrency(inner)
	inner = s.validateURL(inner)

	root := http.NewServeMux()
	if s.live != nil {
		root.HandleFunc("/healthz", s.handleLiveHealthz)
	} else {
		root.HandleFunc("/healthz", s.handleHealthz)
	}
	root.HandleFunc("/readyz", s.handleReadyz)
	root.Handle("/", inner)
	return s.logRequests(s.recoverPanics(root))
}

// handleHealthz is the liveness probe: the process is up and able to
// answer HTTP. It additionally reports whether the served index is
// degraded — opened in salvage mode with sections quarantined — so
// operators monitoring /healthz see corruption the moment a degraded
// index starts serving. Degraded is still 200: the process is alive
// and serving what it can; see the corruption-recovery runbook.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.acquire()
	defer snap.Release()
	h := snap.Index().Health()
	if !h.Degraded {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":              "degraded",
		"quarantinedSections": h.QuarantinedSections,
		"quarantinedTerms":    h.QuarantinedTerms,
		"quarantinedImpacts":  h.QuarantinedImpacts,
	})
}

// handleReadyz is the readiness probe: 200 only while serving traffic,
// 503 before startup finishes and as soon as draining begins so load
// balancers stop routing here ahead of shutdown.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// handleReload swaps in a freshly loaded index without dropping
// in-flight requests. POST only; SIGHUP reaches the same code path.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "reload requires POST"})
		return
	}
	if err := s.Reload(); err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	snap := s.acquire()
	defer snap.Release()
	idx := snap.Index()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":     "reloaded",
		"docs":       idx.Docs(),
		"terms":      idx.Terms(),
		"reloads":    s.Reloads(),
		"generation": s.Generation(),
	})
}

// handleStats reports the served index shape plus serving-side gauges.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.acquire()
	defer snap.Release()
	idx := snap.Index()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"documents":       idx.Docs(),
		"terms":           idx.Terms(),
		"compressedBytes": idx.SizeBytes(),
		"inFlight":        s.inFlight.Load(),
		"reloads":         s.Reloads(),
		"generation":      s.Generation(),
		"sheds":           s.Sheds(),
		"ready":           s.Ready(),
		"health":          idx.Health(),
		"postingCache":    s.CacheStats(),
		"latency":         s.LatencySummary(),
		"statuses":        s.StatusCounts(),
	})
}

// searchResponse is the /search JSON shape. TopK carries the pruning
// work counters for ranked queries, so callers (and the load harness)
// can see how many blocks the chosen algorithm actually decoded.
type searchResponse struct {
	Query   []string       `json:"query"`
	Mode    string         `json:"mode"`
	Docs    []uint32       `json:"docs,omitempty"`
	Ranked  []index.Result `json:"ranked,omitempty"`
	Matches int            `json:"matches"`
	TopK    *ops.TopKStats `json:"topk,omitempty"`
}

// handleSearch answers conjunctive/disjunctive/top-k queries against
// the current index snapshot. The snapshot is acquired once per request
// and released when the response is written, so a concurrent hot reload
// never changes the index mid-query and never unmaps bytes a query is
// still reading.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	snap := s.acquire()
	defer snap.Release()
	idx := snap.Index()
	terms := index.Tokenize(r.URL.Query().Get("q"))
	if len(terms) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing or empty q parameter"})
		return
	}
	if len(terms) > s.cfg.MaxQueryTerms {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("query has %d terms, limit is %d", len(terms), s.cfg.MaxQueryTerms),
		})
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "and"
	}
	resp := searchResponse{Query: terms, Mode: mode}
	switch mode {
	case "and":
		docs, err := idx.Conjunctive(terms...)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		resp.Docs, resp.Matches = docs, len(docs)
	case "or":
		docs, err := idx.Disjunctive(terms...)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		resp.Docs, resp.Matches = docs, len(docs)
	case "topk":
		k := 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			var err error
			if k, err = strconv.Atoi(ks); err != nil || k < 1 {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad k parameter"})
				return
			}
		}
		if k > s.cfg.MaxK {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("k=%d exceeds limit %d", k, s.cfg.MaxK),
			})
			return
		}
		algo := r.URL.Query().Get("algo")
		switch algo {
		case "", "auto", "exhaustive", "maxscore", "bmw":
		default:
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": "algo must be auto | exhaustive | maxscore | bmw",
			})
			return
		}
		var stats ops.TopKStats
		ranked, err := idx.TopKWith(algo, k, &stats, terms...)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		resp.Ranked, resp.Matches = ranked, len(ranked)
		resp.TopK = &stats
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "mode must be and | or | topk"})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
