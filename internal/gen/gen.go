// Package gen produces the paper's synthetic workloads (§5): sorted
// integer lists drawn from the uniform, zipf, and markov distributions
// over a configurable domain. All generators are deterministic given a
// seed so experiments are reproducible.
package gen

import (
	"math"
	"math/rand"
	"sort"
)

// Uniform draws n distinct values uniformly from [0, domain) and
// returns them sorted.
func Uniform(n int, domain uint32, seed int64) []uint32 {
	if uint64(n) > uint64(domain) {
		n = int(domain)
	}
	rng := rand.New(rand.NewSource(seed))
	// Dense requests: selection-sample the domain directly.
	if uint64(n)*3 >= uint64(domain) {
		out := make([]uint32, 0, n)
		need := n
		for v, remaining := uint32(0), uint64(domain); need > 0; v, remaining = v+1, remaining-1 {
			if uint64(rng.Int63n(int64(remaining))) < uint64(need) {
				out = append(out, v)
				need--
			}
		}
		return out
	}
	// Sparse requests: sample with rejection.
	seen := make(map[uint32]struct{}, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		v := uint32(rng.Int63n(int64(domain)))
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Zipf includes value k (1-based rank) with probability proportional to
// 1/k^skew, scaled so the expected list size is n (§5: "the k-th value
// is included with a probability of (1/k^f) / Σ(1/j^f)"). Values are
// the ranks themselves, so a zipf list concentrates near the start of
// the domain — at high density it degenerates toward {1, 2, 3, ...},
// exactly the regime the paper discusses for 1-billion zipf lists.
func Zipf(n int, domain uint32, skew float64, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	// Find c with Σ_k min(1, c/k^skew) = n via bisection.
	mass := func(c float64) float64 {
		// Values with c/k^skew >= 1, i.e. k <= c^(1/skew), contribute 1.
		kFull := math.Pow(c, 1/skew)
		if kFull > float64(domain) {
			return float64(domain)
		}
		full := math.Floor(kFull)
		// Σ_{k>full} c/k^skew ≈ c * ∫_{full}^{domain} x^-skew dx.
		var tail float64
		if skew == 1 {
			tail = c * math.Log(float64(domain)/math.Max(full, 1))
		} else {
			tail = c / (1 - skew) *
				(math.Pow(float64(domain), 1-skew) - math.Pow(math.Max(full, 1), 1-skew))
		}
		return full + tail
	}
	lo, hi := 0.0, float64(domain)
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		if mass(mid) < float64(n) {
			lo = mid
		} else {
			hi = mid
		}
	}
	c := (lo + hi) / 2
	out := make([]uint32, 0, n+n/8)
	for k := uint32(1); k <= domain && uint64(k) <= uint64(domain); k++ {
		p := c / math.Pow(float64(k), skew)
		if p >= 1 || rng.Float64() < p {
			out = append(out, k-1)
		}
		// Beyond the point where p is negligible the remaining mass is
		// near zero; stop scanning.
		if p < 1e-7 && len(out) >= n {
			break
		}
	}
	return out
}

// Markov generates a two-state 0/1 chain over [0, domain) and returns
// the positions of 1s, with clustering factor f and target density ω
// (§5, after [39]). We use P(1→0) = q = 1/f (so 1-runs average f bits)
// and P(0→1) = p = ω/((1-ω)·f), whose stationary distribution has
// density exactly ω. (The paper's text swaps the two formulas, which
// would yield density 1-ω; the [39] originals are used here.)
func Markov(domain uint32, density float64, clustering float64, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	p := density / ((1 - density) * clustering)
	q := 1 / clustering
	if p > 1 {
		p = 1
	}
	if q > 1 {
		q = 1
	}
	out := make([]uint32, 0, int(float64(domain)*density*1.1)+16)
	state := rng.Float64() < density
	for v := uint32(0); v < domain; v++ {
		if state {
			out = append(out, v)
			if rng.Float64() < q {
				state = false
			}
		} else if rng.Float64() < p {
			state = true
		}
	}
	return out
}

// MarkovN generates a markov list trimmed/padded toward exactly n
// elements by adjusting the domain walk; the returned list has size n
// when n is achievable within the domain.
func MarkovN(n int, domain uint32, clustering float64, seed int64) []uint32 {
	density := float64(n) / float64(domain)
	if density >= 1 {
		density = 0.999
	}
	out := Markov(domain, density, clustering, seed)
	if len(out) > n {
		out = out[:n]
	}
	return out
}
