package gen

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestUniformBasics(t *testing.T) {
	for _, n := range []int{0, 1, 100, 5000} {
		vals := Uniform(n, 1<<20, 42)
		if len(vals) != n {
			t.Fatalf("n=%d: got %d values", n, len(vals))
		}
		if err := core.ValidateSorted(vals); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, v := range vals {
			if v >= 1<<20 {
				t.Fatalf("value %d outside domain", v)
			}
		}
	}
}

func TestUniformDense(t *testing.T) {
	// Selection-sampling path: n close to domain.
	vals := Uniform(900, 1000, 1)
	if len(vals) != 900 {
		t.Fatalf("got %d values", len(vals))
	}
	if err := core.ValidateSorted(vals); err != nil {
		t.Fatal(err)
	}
	// n > domain clamps.
	vals = Uniform(5000, 1000, 2)
	if len(vals) != 1000 {
		t.Fatalf("clamp: got %d values", len(vals))
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(1000, 1<<22, 7)
	b := Uniform(1000, 1<<22, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same list")
		}
	}
	c := Uniform(1000, 1<<22, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestUniformIsSpreadOut(t *testing.T) {
	vals := Uniform(10000, 1<<24, 3)
	// Mean should be near domain/2.
	var sum float64
	for _, v := range vals {
		sum += float64(v)
	}
	mean := sum / float64(len(vals))
	if math.Abs(mean-float64(1<<23)) > float64(1<<23)/10 {
		t.Errorf("uniform mean %.0f too far from %d", mean, 1<<23)
	}
}

func TestZipfSizeAndSkew(t *testing.T) {
	n := 20000
	vals := Zipf(n, 1<<24, 1.0, 5)
	if err := core.ValidateSorted(vals); err != nil {
		t.Fatal(err)
	}
	if len(vals) < n/2 || len(vals) > n*2 {
		t.Fatalf("zipf size %d too far from target %d", len(vals), n)
	}
	// Skew: the first half of the list must span far less of the domain
	// than the second half.
	mid := vals[len(vals)/2]
	last := vals[len(vals)-1]
	if uint64(mid)*4 > uint64(last) {
		t.Errorf("zipf not concentrated: median %d vs max %d", mid, last)
	}
}

func TestZipfDense(t *testing.T) {
	// Very high target density: list degenerates toward {0,1,2,...}.
	vals := Zipf(5000, 1<<14, 1.0, 6)
	if len(vals) == 0 || vals[0] != 0 {
		t.Fatalf("dense zipf should start at 0, got %v", vals[:min(5, len(vals))])
	}
	run := 0
	for i := range vals {
		if vals[i] != uint32(i) {
			break
		}
		run++
	}
	if run < 100 {
		t.Errorf("dense zipf should begin with a long consecutive run, got %d", run)
	}
}

func TestMarkovDensityAndClustering(t *testing.T) {
	domain := uint32(1 << 20)
	for _, density := range []float64{0.01, 0.2, 0.5} {
		vals := Markov(domain, density, 8, 9)
		if err := core.ValidateSorted(vals); err != nil {
			t.Fatal(err)
		}
		got := float64(len(vals)) / float64(domain)
		if math.Abs(got-density) > density/3 {
			t.Errorf("density %.3f: got %.3f", density, got)
		}
		// Clustering: mean run length of consecutive values should be
		// near the clustering factor (8), far above uniform's 1/(1-ω).
		runs, runLen := 0, 0
		for i := 0; i < len(vals); i++ {
			runLen++
			if i+1 == len(vals) || vals[i+1] != vals[i]+1 {
				runs++
			}
		}
		meanRun := float64(runLen) / float64(runs)
		if meanRun < 3 {
			t.Errorf("density %.3f: mean run %.1f, want clustered (>=3)", density, meanRun)
		}
	}
}

func TestMarkovN(t *testing.T) {
	vals := MarkovN(5000, 1<<20, 8, 10)
	if len(vals) > 5000 {
		t.Fatalf("MarkovN returned %d > 5000", len(vals))
	}
	if len(vals) < 4000 {
		t.Fatalf("MarkovN returned %d, want near 5000", len(vals))
	}
}
