package core

import (
	"errors"
	"math"
	"testing"
)

func TestValidateSorted(t *testing.T) {
	for _, ok := range [][]uint32{{}, {0}, {5}, {1, 2, 3}, {0, 1 << 31, 1<<32 - 1}} {
		if err := ValidateSorted(ok); err != nil {
			t.Errorf("ValidateSorted(%v) = %v, want nil", ok, err)
		}
	}
	for _, bad := range [][]uint32{{2, 1}, {1, 1}, {0, 5, 5}, {5, 0}} {
		err := ValidateSorted(bad)
		if err == nil {
			t.Errorf("ValidateSorted(%v) = nil, want error", bad)
		}
		if !errors.Is(err, ErrNotSorted) {
			t.Errorf("ValidateSorted(%v) error should wrap ErrNotSorted", bad)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindBitmap.String() != "bitmap" || KindList.String() != "list" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind should degrade gracefully")
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(nil, 0)
	if s.N != 0 || s.Density != 0 {
		t.Error("empty stats should be zero")
	}
	vals := []uint32{10, 20, 30, 40}
	s = ComputeStats(vals, 100)
	if s.N != 4 || s.Domain != 100 {
		t.Errorf("N/Domain wrong: %+v", s)
	}
	if math.Abs(s.Density-0.04) > 1e-9 {
		t.Errorf("density = %f", s.Density)
	}
	if s.MaxGap != 10 || math.Abs(s.MeanGap-10) > 1e-9 {
		t.Errorf("gaps wrong: max=%d mean=%f", s.MaxGap, s.MeanGap)
	}
	if s.GapCV > 1e-9 {
		t.Errorf("uniform gaps should have zero CV, got %f", s.GapCV)
	}
	// Domain defaulting to max+1.
	s = ComputeStats([]uint32{9}, 0)
	if s.Domain != 10 {
		t.Errorf("default domain = %d, want 10", s.Domain)
	}
	// Concentration: zipf-like list has low concentration.
	zipfish := []uint32{1, 2, 3, 4, 5, 6, 7, 1000}
	s = ComputeStats(zipfish, 0)
	if s.Concentration > 0.1 {
		t.Errorf("zipf-like concentration = %f, want near 0", s.Concentration)
	}
	uniformish := []uint32{0, 250, 500, 750, 1000}
	s = ComputeStats(uniformish, 0)
	if math.Abs(s.Concentration-0.5) > 0.01 {
		t.Errorf("uniform concentration = %f, want 0.5", s.Concentration)
	}
}

func TestAdviseFollowsPaperGuidance(t *testing.T) {
	sparse := Stats{N: 1000, Domain: 1 << 24, Density: 0.0001, Concentration: 0.5}
	dense := Stats{N: 1 << 22, Domain: 1 << 24, Density: 0.25, Concentration: 0.5}
	zipfDense := Stats{N: 1 << 22, Domain: 1 << 24, Density: 0.25, Concentration: 0.01}

	cases := []struct {
		s    Stats
		w    Workload
		want string
	}{
		{sparse, WorkloadIntersection, "Roaring"},
		{dense, WorkloadIntersection, "Roaring"},
		{sparse, WorkloadUnion, "SIMDBP128*"},
		{sparse, WorkloadScan, "SIMDBP128*"},
		{sparse, WorkloadSpace, "SIMDPforDelta*"},
		{dense, WorkloadSpace, "Roaring"},
		{zipfDense, WorkloadSpace, "SIMDPforDelta*"}, // zipf: gaps win at any density
	}
	for i, c := range cases {
		if got := Advise(c.s, c.w); got.Codec != c.want {
			t.Errorf("case %d: Advise = %s, want %s", i, got.Codec, c.want)
		}
		if got := Advise(c.s, c.w); got.Reason == "" {
			t.Errorf("case %d: missing reason", i)
		}
	}
	if got := Advise(sparse, Workload(42)); got.Codec == "" {
		t.Error("unknown workload should still return a default")
	}
}
