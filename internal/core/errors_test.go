package core

import (
	"errors"
	"fmt"
	"io/fs"
	"syscall"
	"testing"
)

func TestTransientWrapping(t *testing.T) {
	base := errors.New("disk hiccup")
	err := Transient(base)
	if !errors.Is(err, ErrTransient) {
		t.Fatal("Transient(err) must match ErrTransient")
	}
	if !errors.Is(err, base) {
		t.Fatal("Transient(err) must still match the underlying cause")
	}
	wrapped := fmt.Errorf("open index: %w", err)
	if !IsTransient(wrapped) {
		t.Fatal("IsTransient must see through fmt.Errorf %w wrapping")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must be nil")
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"marked", Transient(errors.New("x")), true},
		{"checksum", fmt.Errorf("index: %w: bad crc", ErrChecksum), false},
		{"version", fmt.Errorf("index: %w: v9", ErrVersion), false},
		{"not-exist", fmt.Errorf("open: %w", fs.ErrNotExist), false},
		{"eintr", fmt.Errorf("read: %w", syscall.EINTR), true},
		{"eagain", fmt.Errorf("mmap: %w", syscall.EAGAIN), true},
		{"emfile", fmt.Errorf("open: %w", syscall.EMFILE), true},
		{"enoent-errno", fmt.Errorf("open: %w", syscall.ENOENT), false},
		{"timeout", timeoutErr{}, true},
		{"plain", errors.New("who knows"), false},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("IsTransient(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// timeoutErr mimics net.Error-style timeouts without importing net.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestMarkedChecksumStaysTransient(t *testing.T) {
	// An explicit Transient mark wins over the permanent default: a
	// caller that knows a checksum failure is a mid-publish race (reader
	// raced the atomic rename) may mark it for retry.
	err := Transient(fmt.Errorf("index: %w", ErrChecksum))
	if !IsTransient(err) {
		t.Fatal("explicit Transient mark must override the permanent default")
	}
}

func TestIsPermanentFormat(t *testing.T) {
	if !IsPermanentFormat(fmt.Errorf("x: %w", ErrChecksum)) {
		t.Fatal("checksum must classify as permanent format damage")
	}
	if !IsPermanentFormat(fmt.Errorf("x: %w", ErrVersion)) {
		t.Fatal("version must classify as permanent format damage")
	}
	if IsPermanentFormat(Transient(errors.New("x"))) {
		t.Fatal("transient errors are not format damage")
	}
}
