package core

import (
	"errors"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	blob := PutHeader(nil, TagWAH, 12345)
	if len(blob) != 5 {
		t.Fatalf("header length %d", len(blob))
	}
	n, rest, err := GetHeader(blob, TagWAH)
	if err != nil || n != 12345 || len(rest) != 0 {
		t.Fatalf("GetHeader = %d, %v, %v", n, rest, err)
	}
}

func TestHeaderRejectsMismatch(t *testing.T) {
	blob := PutHeader(nil, TagWAH, 7)
	if _, _, err := GetHeader(blob, TagEWAH); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("wrong tag accepted: %v", err)
	}
	if _, _, err := GetHeader(blob[:3], TagWAH); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("short header accepted: %v", err)
	}
	if _, _, err := GetHeader(nil, TagWAH); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("empty input accepted: %v", err)
	}
}

// badPosting lies about its contents to exercise VerifyDecompress.
type badPosting struct {
	values []uint32
	n      int
}

func (p badPosting) Len() int             { return p.n }
func (p badPosting) SizeBytes() int       { return 4 * len(p.values) }
func (p badPosting) Decompress() []uint32 { return p.values }

type panicPosting struct{}

func (panicPosting) Len() int             { return 1 }
func (panicPosting) SizeBytes() int       { return 1 }
func (panicPosting) Decompress() []uint32 { panic("corrupt payload") }

func TestVerifyDecompress(t *testing.T) {
	if err := VerifyDecompress(badPosting{values: []uint32{1, 2}, n: 2}); err != nil {
		t.Errorf("valid posting rejected: %v", err)
	}
	if err := VerifyDecompress(badPosting{values: []uint32{1, 2}, n: 3}); !errors.Is(err, ErrBadFormat) {
		t.Errorf("cardinality lie accepted: %v", err)
	}
	if err := VerifyDecompress(badPosting{values: []uint32{2, 1}, n: 2}); !errors.Is(err, ErrBadFormat) {
		t.Errorf("unsorted output accepted: %v", err)
	}
	if err := VerifyDecompress(panicPosting{}); !errors.Is(err, ErrBadFormat) {
		t.Errorf("panic not converted to error: %v", err)
	}
}
