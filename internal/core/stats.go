package core

import "math"

// Stats summarizes the properties of a sorted value list that drive the
// paper's results: density and clustering. The advisor (§7 lessons) and
// the examples consume these.
type Stats struct {
	N       int     // list length
	Domain  uint64  // domain size d (max value + 1, or declared domain)
	Density float64 // N / Domain
	MaxGap  uint32  // largest d-gap
	MeanGap float64 // average d-gap
	// GapCV is the coefficient of variation of the d-gaps; high values
	// indicate clustering (markov-like data), low values uniform spread.
	GapCV float64
	// Concentration is (median - min) / (max - min): ~0.5 for uniform or
	// markov spread, near 0 for zipf-like lists whose mass piles up at
	// the start of the domain.
	Concentration float64
	// Runs counts the maximal runs of consecutive values (gap == 1
	// inside a run). N/Runs is the mean run length: large for clustered
	// markov-like data, ~1 for uniform sparse lists. Run-container
	// selection (Roaring+Run vs plain Roaring) keys off it.
	Runs int
}

// ComputeStats derives Stats from a sorted list. If domain is zero the
// maximum value + 1 is used.
func ComputeStats(values []uint32, domain uint64) Stats {
	s := Stats{N: len(values), Domain: domain}
	if len(values) == 0 {
		return s
	}
	if s.Domain == 0 {
		s.Domain = uint64(values[len(values)-1]) + 1
	}
	s.Density = float64(s.N) / float64(s.Domain)

	var sum, sumSq float64
	prev := uint32(0)
	s.Runs = 1
	for i, v := range values {
		g := v - prev
		if i == 0 {
			g = v
		}
		if i > 0 && g != 1 {
			s.Runs++
		}
		if g > s.MaxGap {
			s.MaxGap = g
		}
		sum += float64(g)
		sumSq += float64(g) * float64(g)
		prev = v
	}
	n := float64(s.N)
	s.MeanGap = sum / n
	variance := sumSq/n - s.MeanGap*s.MeanGap
	if variance < 0 {
		variance = 0
	}
	if s.MeanGap > 0 {
		s.GapCV = math.Sqrt(variance) / s.MeanGap
	}
	if span := values[len(values)-1] - values[0]; span > 0 {
		s.Concentration = float64(values[len(values)/2]-values[0]) / float64(span)
	}
	return s
}
