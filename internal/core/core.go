// Package core defines the unified interfaces shared by every compression
// method in this study: bitmap codecs (WAH, EWAH, Roaring, ...) and
// inverted-list codecs (VB, PforDelta, SIMDBP128*, ...) all compress the
// same logical object — a sorted set of uint32 values — and all support
// the same four operations the paper measures: space, decompression,
// intersection, and union.
package core

import (
	"errors"
	"fmt"
)

// Kind distinguishes the two families of compression methods compared in
// the paper.
type Kind int

const (
	// KindBitmap marks bitmap compression methods (database lineage, §2).
	KindBitmap Kind = iota
	// KindList marks inverted-list compression methods (IR lineage, §3).
	KindList
)

// String returns the family name used in the paper's tables.
func (k Kind) String() string {
	switch k {
	case KindBitmap:
		return "bitmap"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Posting is an immutable compressed representation of a sorted set of
// uint32 values (document IDs / row IDs).
type Posting interface {
	// Len reports the number of values in the set.
	Len() int
	// SizeBytes reports the compressed footprint in bytes, including any
	// auxiliary structures (skip pointers, container metadata).
	SizeBytes() int
	// Decompress materializes the full sorted value list.
	Decompress() []uint32
}

// DecompressAppender is an optional Posting extension for callers that
// manage their own decode buffers (arena or pool allocators in the query
// engine): the posting's values are appended to dst, growing it only
// when capacity runs out, so steady-state decodes are allocation-free.
//
// Implementations must treat dst[:len(dst)] as caller-owned data and
// only append; every codec in this module implements it.
type DecompressAppender interface {
	// DecompressAppend appends the full sorted value list to dst and
	// returns the extended slice.
	DecompressAppend(dst []uint32) []uint32
}

// DecompressAppend appends p's values to dst, using the posting's native
// DecompressAppend when available and falling back to Decompress plus
// copy otherwise. It is the decode entry point for pooled buffers.
func DecompressAppend(p Posting, dst []uint32) []uint32 {
	if da, ok := p.(DecompressAppender); ok {
		return da.DecompressAppend(dst)
	}
	return append(dst, p.Decompress()...)
}

// GrowLen extends dst by n elements (reallocating only when capacity is
// insufficient) and returns the extended slice. The new tail is
// uninitialized scratch for the caller to fill — a shared helper for
// DecompressAppend implementations that decode block-wise into
// positioned sub-slices rather than appending element by element.
func GrowLen(dst []uint32, n int) []uint32 {
	if need := len(dst) + n; need > cap(dst) {
		grown := make([]uint32, need, max(need, 2*cap(dst)))
		copy(grown, dst)
		return grown
	}
	return dst[:len(dst)+n]
}

// Codec compresses sorted sets of uint32 values.
//
// Compress requires a strictly increasing slice; it returns an error
// otherwise. The returned Posting is independent of the input slice.
type Codec interface {
	Name() string
	Kind() Kind
	Compress(values []uint32) (Posting, error)
}

// Intersecter is implemented by postings that can intersect directly on
// the compressed representation (all bitmap codecs in this study, and
// list codecs via skip pointers). The result is an uncompressed sorted
// list, matching the paper's implementation (§B.1).
type Intersecter interface {
	IntersectWith(other Posting) ([]uint32, error)
}

// Unioner is implemented by postings that can union directly on the
// compressed representation.
type Unioner interface {
	UnionWith(other Posting) ([]uint32, error)
}

// ListProber is implemented by bitmap postings that can intersect an
// uncompressed sorted list directly against their compressed form —
// the paper's second intersection operator, "bitmap vs list" (§B.1),
// used when a running result meets the next compressed bitmap in a
// multi-way intersection.
type ListProber interface {
	// IntersectList returns the elements of sorted that are present in
	// the posting. sorted must be strictly increasing.
	IntersectList(sorted []uint32) []uint32
}

// BucketProber is implemented by bucketed bitmap postings (Roaring and
// Roaring+Run) that expose their 2^16-wide value buckets so the engine
// can intersect a compressed bitmap against a compressed list without
// decompressing either side: the mixed kernel walks bucket keys against
// the list's skip iterator, enumerating whichever side of a matching
// bucket is cheaper and probing the other.
type BucketProber interface {
	Posting
	// NumBuckets reports the number of non-empty buckets.
	NumBuckets() int
	// BucketKey returns the high-16-bit key of bucket i; keys are
	// strictly increasing in i.
	BucketKey(i int) uint16
	// BucketLen reports the cardinality of bucket i (always > 0).
	BucketLen(i int) int
	// BucketContains reports whether low 16-bit value lo is present in
	// bucket i.
	BucketContains(i int, lo uint16) bool
	// AppendBucket appends bucket i's values — with the key's high bits
	// restored — to dst and returns the extended slice.
	AppendBucket(i int, dst []uint32) []uint32
}

// BlockDecoder is implemented by list postings stored in the fixed
// block frame (intlist.Blocked): the posting exposes its physical
// blocks so ranked-retrieval cursors can decode only the blocks whose
// block-max impact can still beat the running top-k heap threshold.
// Block b holds the values [b*BlockSpan(), ...) of the sorted list;
// every block except possibly the last holds exactly BlockSpan()
// values, so positional impact blocks cut at the same width line up
// one-to-one with physical blocks.
type BlockDecoder interface {
	Posting
	// BlockSpan reports the frame's cut width (values per full block).
	BlockSpan() int
	// NumBlocks reports the number of blocks (ceil(Len/BlockSpan)).
	NumBlocks() int
	// BlockFirst returns the first value of block b without decoding it.
	BlockFirst(b int) uint32
	// DecodeBlock fills buf with block b's values and returns
	// buf[:blockLen]. buf must have room for BlockSpan values.
	DecodeBlock(b int, buf []uint32) []uint32
}

// Seeker is implemented by list postings with skip pointers: SeekGEQ
// support is what makes SvS intersection skip whole blocks (§B, App. B),
// and what lets PEF intersect without decompressing entire blocks.
type Seeker interface {
	// Iterator returns a fresh iterator positioned before the first value.
	Iterator() Iterator
}

// Iterator walks a posting in sorted order with skipping.
type Iterator interface {
	// Next returns the next value; ok is false when exhausted.
	Next() (v uint32, ok bool)
	// SeekGEQ advances to the first value >= target and returns it.
	// Subsequent Next calls continue after the returned value.
	SeekGEQ(target uint32) (v uint32, ok bool)
}

// ErrNotSorted is returned by Compress when the input is not strictly
// increasing.
var ErrNotSorted = errors.New("core: input values must be strictly increasing")

// ErrChecksum is returned when a persisted artifact fails its integrity
// check: the stored CRC trailer does not match the bytes read, meaning
// the file was corrupted, truncated, or tampered with after writing.
var ErrChecksum = errors.New("core: checksum mismatch (corrupt or truncated data)")

// ErrVersion is returned when a persisted artifact declares a format
// version this build does not understand.
var ErrVersion = errors.New("core: unsupported format version")

// ErrIncompatible is returned when a native compressed-form operation is
// asked to combine postings of different codecs.
var ErrIncompatible = errors.New("core: postings come from incompatible codecs")

// ValidateSorted checks the Compress input contract.
func ValidateSorted(values []uint32) error {
	for i := 1; i < len(values); i++ {
		if values[i] <= values[i-1] {
			return fmt.Errorf("%w: values[%d]=%d, values[%d]=%d",
				ErrNotSorted, i-1, values[i-1], i, values[i])
		}
	}
	return nil
}
