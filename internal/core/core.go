// Package core defines the unified interfaces shared by every compression
// method in this study: bitmap codecs (WAH, EWAH, Roaring, ...) and
// inverted-list codecs (VB, PforDelta, SIMDBP128*, ...) all compress the
// same logical object — a sorted set of uint32 values — and all support
// the same four operations the paper measures: space, decompression,
// intersection, and union.
package core

import (
	"errors"
	"fmt"
)

// Kind distinguishes the two families of compression methods compared in
// the paper.
type Kind int

const (
	// KindBitmap marks bitmap compression methods (database lineage, §2).
	KindBitmap Kind = iota
	// KindList marks inverted-list compression methods (IR lineage, §3).
	KindList
)

// String returns the family name used in the paper's tables.
func (k Kind) String() string {
	switch k {
	case KindBitmap:
		return "bitmap"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Posting is an immutable compressed representation of a sorted set of
// uint32 values (document IDs / row IDs).
type Posting interface {
	// Len reports the number of values in the set.
	Len() int
	// SizeBytes reports the compressed footprint in bytes, including any
	// auxiliary structures (skip pointers, container metadata).
	SizeBytes() int
	// Decompress materializes the full sorted value list.
	Decompress() []uint32
}

// Codec compresses sorted sets of uint32 values.
//
// Compress requires a strictly increasing slice; it returns an error
// otherwise. The returned Posting is independent of the input slice.
type Codec interface {
	Name() string
	Kind() Kind
	Compress(values []uint32) (Posting, error)
}

// Intersecter is implemented by postings that can intersect directly on
// the compressed representation (all bitmap codecs in this study, and
// list codecs via skip pointers). The result is an uncompressed sorted
// list, matching the paper's implementation (§B.1).
type Intersecter interface {
	IntersectWith(other Posting) ([]uint32, error)
}

// Unioner is implemented by postings that can union directly on the
// compressed representation.
type Unioner interface {
	UnionWith(other Posting) ([]uint32, error)
}

// ListProber is implemented by bitmap postings that can intersect an
// uncompressed sorted list directly against their compressed form —
// the paper's second intersection operator, "bitmap vs list" (§B.1),
// used when a running result meets the next compressed bitmap in a
// multi-way intersection.
type ListProber interface {
	// IntersectList returns the elements of sorted that are present in
	// the posting. sorted must be strictly increasing.
	IntersectList(sorted []uint32) []uint32
}

// Seeker is implemented by list postings with skip pointers: SeekGEQ
// support is what makes SvS intersection skip whole blocks (§B, App. B),
// and what lets PEF intersect without decompressing entire blocks.
type Seeker interface {
	// Iterator returns a fresh iterator positioned before the first value.
	Iterator() Iterator
}

// Iterator walks a posting in sorted order with skipping.
type Iterator interface {
	// Next returns the next value; ok is false when exhausted.
	Next() (v uint32, ok bool)
	// SeekGEQ advances to the first value >= target and returns it.
	// Subsequent Next calls continue after the returned value.
	SeekGEQ(target uint32) (v uint32, ok bool)
}

// ErrNotSorted is returned by Compress when the input is not strictly
// increasing.
var ErrNotSorted = errors.New("core: input values must be strictly increasing")

// ErrChecksum is returned when a persisted artifact fails its integrity
// check: the stored CRC trailer does not match the bytes read, meaning
// the file was corrupted, truncated, or tampered with after writing.
var ErrChecksum = errors.New("core: checksum mismatch (corrupt or truncated data)")

// ErrVersion is returned when a persisted artifact declares a format
// version this build does not understand.
var ErrVersion = errors.New("core: unsupported format version")

// ErrIncompatible is returned when a native compressed-form operation is
// asked to combine postings of different codecs.
var ErrIncompatible = errors.New("core: postings come from incompatible codecs")

// ValidateSorted checks the Compress input contract.
func ValidateSorted(values []uint32) error {
	for i := 1; i < len(values); i++ {
		if values[i] <= values[i-1] {
			return fmt.Errorf("%w: values[%d]=%d, values[%d]=%d",
				ErrNotSorted, i-1, values[i-1], i, values[i])
		}
	}
	return nil
}
