package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Postings additionally implement encoding.BinaryMarshaler: the binary
// form is self-describing (a one-byte format tag, then the codec's own
// layout, little-endian throughout) so an index can persist compressed
// postings and reload them without recompressing.
//
// Decoder is the codec-side counterpart: it reconstructs a Posting from
// MarshalBinary output. Every codec in this module implements it;
// codecs.Decode dispatches on the format tag when the producing codec
// is unknown.
//
// Borrowed-bytes contract: data may be a view into memory the caller
// does not own — a slice of an mmap-ed index section that can be
// unmapped later (see index.OpenFile). Decode must therefore copy
// everything it keeps: the returned Posting must not retain data or
// any subslice of it. All codecs in this module satisfy this by
// construction (they parse into freshly allocated structures); new
// Decoder implementations must preserve it, or lazily materialized
// postings would dangle after the index file is closed.
type Decoder interface {
	Decode(data []byte) (Posting, error)
}

// ErrBadFormat is returned when Decode is handed bytes that are not a
// valid serialized posting for the codec (wrong tag, truncation,
// corrupt lengths).
var ErrBadFormat = errors.New("core: malformed serialized posting")

// VerifyDecompress fully decodes p and checks the result is a sorted
// set of the declared cardinality, converting any panic from a corrupt
// payload into ErrBadFormat. Codec Decode implementations run this so
// a successfully decoded posting is guaranteed usable. (Adversarial
// inputs can still force a large transient allocation before the check
// fails; do not feed untrusted data to Decode.)
func VerifyDecompress(p Posting) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: corrupt payload: %v", ErrBadFormat, r)
		}
	}()
	out := p.Decompress()
	if len(out) != p.Len() {
		return fmt.Errorf("%w: decoded %d values, header says %d", ErrBadFormat, len(out), p.Len())
	}
	if ValidateSorted(out) != nil {
		return fmt.Errorf("%w: decoded values not strictly increasing", ErrBadFormat)
	}
	return nil
}

// Format tags. The tag is the first byte of every serialized posting.
const (
	TagBitset byte = 0x01 + iota
	TagBBC
	TagWAH
	TagEWAH
	TagPLWAH
	TagCONCISE
	TagVALWAH
	TagSBH
	TagRoaring
	TagRawList
	TagBlocked // block-framed list codec; inner codec named in header
	TagPEF
	// TagRoaringRun marks the Roaring+Run extension codec (not one of
	// the paper's 24 methods).
	TagRoaringRun
)

// PutHeader appends the standard header: tag + uint32 cardinality.
func PutHeader(dst []byte, tag byte, n int) []byte {
	dst = append(dst, tag)
	return binary.LittleEndian.AppendUint32(dst, uint32(n))
}

// GetHeader validates the tag and extracts the cardinality, returning
// the remaining payload.
func GetHeader(data []byte, tag byte) (n int, rest []byte, err error) {
	if len(data) < 5 {
		return 0, nil, fmt.Errorf("%w: short header (%d bytes)", ErrBadFormat, len(data))
	}
	if data[0] != tag {
		return 0, nil, fmt.Errorf("%w: tag 0x%02x, want 0x%02x", ErrBadFormat, data[0], tag)
	}
	return int(binary.LittleEndian.Uint32(data[1:])), data[5:], nil
}
