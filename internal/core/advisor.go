package core

// Workload describes the dominant operation a deployment cares about.
// The paper's §7 recommendations are operation-specific: a method good
// for decompression may be poor for intersection and vice versa
// (lesson 7).
type Workload int

const (
	// WorkloadIntersection covers conjunctive queries, star joins, and
	// IR top-k (where intersection dominates, §A.1).
	WorkloadIntersection Workload = iota
	// WorkloadUnion covers disjunctive queries and range queries (§A.2).
	WorkloadUnion
	// WorkloadScan covers table scans / list traversal, dominated by
	// decompression speed.
	WorkloadScan
	// WorkloadSpace optimizes purely for compressed size.
	WorkloadSpace
)

// Recommendation is the advisor's output: a codec name from this module
// plus the reasoning, phrased after the paper's summary (§7.1).
type Recommendation struct {
	Codec  string
	Reason string
}

// Advise implements the paper's decision guidelines (§7.1, §7.2) as an
// executable function of list statistics and workload:
//
//   - intersection  → Roaring (fastest AND in general, lessons 2–3),
//   - union / scan  → SIMDBP128* (fastest OR and decompression),
//   - space, sparse → SIMDPforDelta* (least space unless ultra dense),
//   - space, dense (density ≥ 1/5, uniform/markov-like) → Roaring.
func Advise(s Stats, w Workload) Recommendation {
	dense := s.Density >= 0.2 // the paper's |L|/d >= 1/5 threshold
	switch w {
	case WorkloadIntersection:
		return Recommendation{
			Codec: "Roaring",
			Reason: "Roaring achieves the fastest intersection in general: " +
				"bucket-level skipping plus uncompressed 16-bit arrays and bitmaps",
		}
	case WorkloadUnion:
		return Recommendation{
			Codec: "SIMDBP128*",
			Reason: "inverted-list codecs beat bitmaps on union; SIMDBP128* is " +
				"the fastest in nearly all cases",
		}
	case WorkloadScan:
		return Recommendation{
			Codec:  "SIMDBP128*",
			Reason: "SIMDBP128* achieves the best decompression performance",
		}
	case WorkloadSpace:
		// Zipf-like lists (mass concentrated at the domain start) favor
		// gap coding at every density (§7.1 point 1.(2)); uniform or
		// markov lists flip to bitmaps once ultra dense.
		if dense && s.Concentration >= 0.25 {
			return Recommendation{
				Codec: "Roaring",
				Reason: "for ultra-dense lists (|L|/d >= 1/5) bitmap methods use " +
					"fewer bits per value; Roaring is the space winner among them",
			}
		}
		return Recommendation{
			Codec: "SIMDPforDelta*",
			Reason: "for short-to-moderate density (and any zipf-like data) " +
				"SIMDPforDelta* takes the least space",
		}
	}
	return Recommendation{Codec: "Roaring", Reason: "default: best general-purpose intersection"}
}

// Build-time per-list selection thresholds (documented in DESIGN §8).
const (
	// DenseThreshold is the paper's |L|/d >= 1/5 density cut above which
	// bitmap methods use fewer bits per value than gap coding (§7.1).
	DenseThreshold = 0.2
	// RunThreshold is the minimum mean run length (N/Runs) at which run
	// containers pay for themselves: a run costs 4 bytes vs 2 bytes per
	// array value, so runs shorter than 2 lose outright and the extra
	// container-type dispatch wants additional margin.
	RunThreshold = 4.0
	// ZipfConcentration separates zipf-like lists (mass piled at the
	// domain start, Concentration near 0) from uniform/markov spread
	// (~0.5). Zipf-like gaps are tiny where it matters, so gap coding
	// with patched exceptions takes the least space (§7.1 point 1.(2)).
	ZipfConcentration = 0.25
)

// AdviseList picks the build-time codec for a single posting list from
// its statistics alone — the per-list specialization of Advise that the
// adaptive builder applies to every term (§7 lesson: no single method
// wins; choose per list by density and distribution):
//
//	dense (Density >= 1/5):
//	  run-structured (N/Runs >= 4) → Roaring+Run (run containers win on
//	                                 dense runs, cf. the Roaring paper)
//	  otherwise                    → Roaring (fastest intersection)
//	sparse:
//	  zipf-like (Concentration < 0.25) → SIMDPforDelta* (least space)
//	  otherwise                        → SIMDBP128* (fastest decode/OR)
//
// Selection is a pure function of the final merged list, so sharded
// builds choose identically for any shard count.
func AdviseList(s Stats) Recommendation {
	if s.Density >= DenseThreshold {
		if s.Runs > 0 && float64(s.N)/float64(s.Runs) >= RunThreshold {
			return Recommendation{
				Codec: "Roaring+Run",
				Reason: "ultra-dense with long consecutive runs: run containers " +
					"store an interval in 4 bytes regardless of length",
			}
		}
		return Recommendation{
			Codec: "Roaring",
			Reason: "ultra-dense (|L|/d >= 1/5): bitmap containers use fewer " +
				"bits per value and intersect fastest",
		}
	}
	if s.Concentration < ZipfConcentration {
		return Recommendation{
			Codec: "SIMDPforDelta*",
			Reason: "sparse zipf-like list (mass at domain start): patched gap " +
				"coding takes the least space",
		}
	}
	return Recommendation{
		Codec: "SIMDBP128*",
		Reason: "sparse spread-out list: SIMDBP128* decodes and unions fastest " +
			"at a small space premium",
	}
}
