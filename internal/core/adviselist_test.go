package core

import "testing"

func seqList(lo, n uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = lo + uint32(i)
	}
	return out
}

func TestStatsRuns(t *testing.T) {
	cases := []struct {
		name string
		list []uint32
		want int
	}{
		{"empty", nil, 0},
		{"single", []uint32{7}, 1},
		{"one-run", []uint32{4, 5, 6, 7}, 1},
		{"all-gaps", []uint32{0, 2, 4, 6}, 4},
		{"mixed", []uint32{1, 2, 4, 5, 9}, 3},
		{"run-at-zero", []uint32{0, 1, 2}, 1},
	}
	for _, tc := range cases {
		if got := ComputeStats(tc.list, 0).Runs; got != tc.want {
			t.Errorf("%s: Runs = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestAdviseListQuadrants(t *testing.T) {
	domain := uint64(1 << 16)

	// Dense with one long run: every value in [0, d/2).
	dense := seqList(0, 1<<15)
	if got := AdviseList(ComputeStats(dense, domain)).Codec; got != "Roaring+Run" {
		t.Errorf("dense run-structured list: got %s, want Roaring+Run", got)
	}

	// Dense but scattered: every other value — density 0.5, mean run 1.
	scattered := make([]uint32, 1<<15)
	for i := range scattered {
		scattered[i] = uint32(2 * i)
	}
	if got := AdviseList(ComputeStats(scattered, domain)).Codec; got != "Roaring" {
		t.Errorf("dense scattered list: got %s, want Roaring", got)
	}

	// Sparse, mass piled at the domain start (zipf-like): concentration
	// (median-min)/(max-min) is tiny.
	zipf := append(seqList(0, 0), 1, 3, 5, 7, 9, 11, 13, 15, 17, 60000)
	s := ComputeStats(zipf, domain)
	if s.Concentration >= ZipfConcentration {
		t.Fatalf("test list not zipf-like: concentration %.3f", s.Concentration)
	}
	if got := AdviseList(s).Codec; got != "SIMDPforDelta*" {
		t.Errorf("sparse zipf-like list: got %s, want SIMDPforDelta*", got)
	}

	// Sparse, uniformly spread: concentration ~0.5.
	spread := make([]uint32, 64)
	for i := range spread {
		spread[i] = uint32(i * 1000)
	}
	if got := AdviseList(ComputeStats(spread, domain)).Codec; got != "SIMDBP128*" {
		t.Errorf("sparse spread list: got %s, want SIMDBP128*", got)
	}
}

// TestAdviseListBoundaries pins the documented thresholds so a silent
// constant change shows up as a test failure, not a bench regression.
func TestAdviseListBoundaries(t *testing.T) {
	// Exactly at the density threshold counts as dense.
	at := Stats{N: 200, Domain: 1000, Density: 0.2, Runs: 200, Concentration: 0.5}
	if got := AdviseList(at).Codec; got != "Roaring" {
		t.Errorf("density==threshold: got %s, want Roaring", got)
	}
	// Mean run length exactly at RunThreshold flips to run containers.
	at.Runs = 50 // 200/50 == 4.0
	if got := AdviseList(at).Codec; got != "Roaring+Run" {
		t.Errorf("meanRun==threshold: got %s, want Roaring+Run", got)
	}
	// Concentration exactly at the cut is NOT zipf-like.
	sp := Stats{N: 10, Domain: 1000, Density: 0.01, Runs: 10, Concentration: ZipfConcentration}
	if got := AdviseList(sp).Codec; got != "SIMDBP128*" {
		t.Errorf("concentration==cut: got %s, want SIMDBP128*", got)
	}
}
