package core

import (
	"errors"
	"io/fs"
	"syscall"
)

// Error taxonomy for the persistence and serving stack: every failure
// an open/load path can surface is either transient (the same call may
// succeed if retried — a deployment race, resource pressure, an
// interrupted syscall) or permanent (the artifact itself is wrong —
// corrupt, truncated, or from an unknown format version — and no
// amount of retrying will fix it). Callers that own a retry loop
// (cmd/bvserve's startup open) branch on IsTransient; callers that own
// a recovery path (degraded open, rebuild runbooks) branch on the
// permanent sentinels ErrChecksum / ErrVersion.

// ErrTransient is the sentinel wrapped by Transient and matched by
// IsTransient: the operation failed for a reason that retrying with
// backoff may cure.
var ErrTransient = errors.New("core: transient failure")

// transientError carries an underlying cause while matching
// ErrTransient through errors.Is.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }

func (e *transientError) Unwrap() error { return e.err }

func (e *transientError) Is(target error) bool { return target == ErrTransient }

// Transient marks err as retryable: the result matches both
// ErrTransient and err's own chain through errors.Is/As. A nil err
// returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// transientErrnos are the syscall failures worth retrying: resource
// pressure and interruption, not missing or malformed data.
var transientErrnos = []syscall.Errno{
	syscall.EINTR, syscall.EAGAIN, syscall.EBUSY,
	syscall.ENFILE, syscall.EMFILE, syscall.ENOMEM,
}

// IsTransient reports whether err is worth retrying: it (or anything
// in its chain) was marked with Transient, is a timeout, or is one of
// the retryable syscall errnos. Checksum, version, and not-exist
// failures are permanent — a corrupt or absent artifact does not heal
// on retry. (Callers that know better, e.g. a server watching a path a
// deployer is about to populate, can wrap with Transient themselves.)
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	if errors.Is(err, ErrChecksum) || errors.Is(err, ErrVersion) || errors.Is(err, fs.ErrNotExist) {
		return false
	}
	var timeout interface{ Timeout() bool }
	if errors.As(err, &timeout) && timeout.Timeout() {
		return true
	}
	for _, errno := range transientErrnos {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// IsPermanentFormat reports whether err means the artifact itself is
// unusable as-is: corrupt bytes (ErrChecksum) or an unknown format
// version (ErrVersion). These are the errors degraded-mode recovery
// exists for.
func IsPermanentFormat(err error) bool {
	return errors.Is(err, ErrChecksum) || errors.Is(err, ErrVersion)
}
