package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/shard"
)

func writeDocs(t *testing.T, docs []string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "docs.txt")
	if err := os.WriteFile(p, []byte(strings.Join(docs, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildAndQuery(t *testing.T) {
	docsFile := writeDocs(t, []string{
		"compressed bitmap indexes",
		"inverted lists for search",
		"bitmap and inverted compression compression",
	})
	idxFile := filepath.Join(t.TempDir(), "out.idx")
	if err := runBuild(docsFile, idxFile, "Roaring", "bvix3", 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runQuery(idxFile, "bitmap compression", "and", 5, "auto", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 docs: [2]") {
		t.Errorf("AND output = %q", buf.String())
	}
	buf.Reset()
	if err := runQuery(idxFile, "bitmap inverted", "or", 5, "auto", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3 docs") {
		t.Errorf("OR output = %q", buf.String())
	}
	buf.Reset()
	if err := runQuery(idxFile, "compression", "topk", 1, "auto", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "doc 2 (score 2)") {
		t.Errorf("TOPK output = %q", buf.String())
	}
}

// TestBuildImpactsAndRankedQuery builds with the impacts format and
// checks every pinned top-k algorithm agrees through the CLI, with the
// pruning counters reported.
func TestBuildImpactsAndRankedQuery(t *testing.T) {
	docsFile := writeDocs(t, []string{
		"compressed bitmap indexes",
		"inverted lists for search",
		"bitmap and inverted compression compression",
	})
	idxFile := filepath.Join(t.TempDir(), "out.idx")
	if err := runBuild(docsFile, idxFile, "auto", "bvix3+impacts", 0); err != nil {
		t.Fatal(err)
	}
	var want string
	for _, algo := range []string{"exhaustive", "maxscore", "bmw", "auto"} {
		var buf bytes.Buffer
		if err := runQuery(idxFile, "compression bitmap", "topk", 2, algo, &buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.Contains(out, "doc 2 (score 3)") {
			t.Errorf("algo %s: output = %q", algo, out)
		}
		if !strings.Contains(out, "blocks decoded") {
			t.Errorf("algo %s: no pruning counters in %q", algo, out)
		}
		// All algorithms must rank identically (only the bracketed mode
		// line may differ).
		ranks := out[strings.Index(out, "\n"):]
		if want == "" {
			want = ranks
		} else if ranks != want {
			t.Errorf("algo %s ranking diverged:\n%s\nwant:\n%s", algo, ranks, want)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	docsFile := writeDocs(t, []string{"a doc"})
	if err := runBuild(docsFile, "", "Roaring", "bvix3", 0); err == nil {
		t.Error("missing -out accepted")
	}
	out := filepath.Join(t.TempDir(), "x.idx")
	if err := runBuild(docsFile, out, "NoSuchCodec", "bvix3", 0); err == nil {
		t.Error("unknown codec accepted")
	}
	if err := runBuild(filepath.Join(t.TempDir(), "missing.txt"), out, "Roaring", "bvix3", 0); err == nil {
		t.Error("missing input accepted")
	}
	if err := runBuild(docsFile, out, "Roaring", "bvix9", 0); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestQueryErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := runQuery("", "x", "and", 5, "auto", &buf); err == nil {
		t.Error("missing -index accepted")
	}
	docsFile := writeDocs(t, []string{"a doc"})
	idxFile := filepath.Join(t.TempDir(), "q.idx")
	if err := runBuild(docsFile, idxFile, "VB", "bvix2", 2); err != nil {
		t.Fatal(err)
	}
	if err := runQuery(idxFile, "doc", "nonsense", 5, "auto", &buf); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := runQuery(docsFile, "doc", "and", 5, "auto", &buf); err == nil {
		t.Error("non-index file accepted")
	}
}

// TestPartitionBuild: -partition N writes one shard file per shard
// plus a verifiable manifest, and the shards reopen as servable
// indexes that jointly cover the corpus.
func TestPartitionBuild(t *testing.T) {
	docs := []string{
		"compressed bitmap indexes",
		"inverted lists for search",
		"bitmap and inverted compression compression",
		"roaring bitmap compression",
		"search over compressed lists",
		"bitmap search",
		"inverted index compression",
	}
	docsFile := writeDocs(t, docs)
	dir := t.TempDir()
	mapPath := filepath.Join(dir, "shards.json")
	if err := runPartition(docsFile, mapPath, "auto", "bvix3+impacts", 0, 3); err != nil {
		t.Fatal(err)
	}
	m, err := shard.LoadMap(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 3 || m.Docs != len(docs) {
		t.Fatalf("manifest shape: %+v", m)
	}
	if err := m.VerifyFiles(dir); err != nil {
		t.Fatalf("fresh shard files fail verification: %v", err)
	}
	total := 0
	for s, e := range m.Entries {
		idx, err := index.OpenFile(filepath.Join(dir, e.File))
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		total += idx.Docs()
		// Shard s holds globals s, s+3, ... — its local doc 0 is the
		// corpus document s.
		wantFirst := index.Tokenize(docs[s])
		got, err := idx.Conjunctive(wantFirst...)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, d := range got {
			if d == 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("shard %d local doc 0 does not match corpus doc %d", s, s)
		}
		idx.Close()
	}
	if total != len(docs) {
		t.Fatalf("shards cover %d docs, corpus has %d", total, len(docs))
	}
}

// TestPartitionRefusals: empty-shard partitions and missing outputs
// are one-line errors, and no partial layout is left behind on the
// empty-shard refusal.
func TestPartitionRefusals(t *testing.T) {
	docsFile := writeDocs(t, []string{"one doc", "two doc"})
	dir := t.TempDir()
	mapPath := filepath.Join(dir, "shards.json")
	err := runPartition(docsFile, mapPath, "Roaring", "bvix3", 0, 5)
	if err == nil {
		t.Fatal("5 shards over 2 docs accepted")
	}
	if !strings.Contains(err.Error(), "empty shards") {
		t.Fatalf("error does not name the cause: %v", err)
	}
	if _, serr := os.Stat(mapPath); !os.IsNotExist(serr) {
		t.Fatal("refused partition left a manifest behind")
	}
	if err := runPartition(docsFile, "", "Roaring", "bvix3", 0, 2); err == nil {
		t.Fatal("missing -out accepted")
	}
	empty := writeDocs(t, []string{"", "  "})
	if err := runPartition(empty, mapPath, "Roaring", "bvix3", 0, 2); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

// TestBuildEmptyCorpus: a corpus with no non-blank documents must be
// refused, not silently written as an empty index with exit 0.
func TestBuildEmptyCorpus(t *testing.T) {
	docsFile := writeDocs(t, []string{"", "   ", "\t"})
	out := filepath.Join(t.TempDir(), "empty.idx")
	err := runBuild(docsFile, out, "Roaring", "bvix3", 0)
	if err == nil {
		t.Fatal("empty corpus accepted")
	}
	if !strings.Contains(err.Error(), "empty corpus") {
		t.Fatalf("error does not name the cause: %v", err)
	}
	if _, serr := os.Stat(out); !os.IsNotExist(serr) {
		t.Fatalf("empty-corpus build left a file at %s", out)
	}
}

// TestBuildUnwritableOutput: an unwritable output path is a clean
// error, and a previously published index at that path survives the
// failed attempt untouched (atomic publish).
func TestBuildUnwritableOutput(t *testing.T) {
	docsFile := writeDocs(t, []string{"a doc"})
	out := filepath.Join(t.TempDir(), "no", "such", "dir", "x.idx")
	if err := runBuild(docsFile, out, "Roaring", "bvix3", 0); err == nil {
		t.Fatal("unwritable output path accepted")
	}

	dir := t.TempDir()
	published := filepath.Join(dir, "keep.idx")
	if err := runBuild(docsFile, published, "Roaring", "bvix3", 0); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(published)
	if err != nil {
		t.Fatal(err)
	}
	// Routing the output path through the published file itself yields
	// ENOTDIR for any uid (a chmod-based probe is useless under root).
	moreDocs := writeDocs(t, []string{"a doc", "another doc"})
	if err := runBuild(moreDocs, filepath.Join(published, "sub.idx"), "Roaring", "bvix3", 0); err == nil {
		t.Fatal("write through a file path component accepted")
	}
	after, err := os.ReadFile(published)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed build disturbed the previously published index")
	}
}

// TestFromWAL drives the offline recovery path: a live directory with
// sealed segments, a WAL tail, and tombstones compacts into a single
// queryable static index; an empty or missing directory is refused
// with a one-line cause.
func TestFromWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "live")
	l, err := index.OpenLive(dir, index.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range []string{
		"compressed bitmap indexes",
		"inverted lists for search",
		"bitmap and inverted compression compression",
	} {
		if _, err := l.Add(text); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	// A WAL-tail add and a tombstone that recovery must honor.
	if _, err := l.Add("trailing bitmap document"); err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(t.TempDir(), "recovered.idx")
	if err := runFromWAL(dir, out, "auto", "bvix3"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runQuery(out, "bitmap", "and", 5, "auto", &buf); err != nil {
		t.Fatal(err)
	}
	// Survivors renumber densely: docs 0, 2, 3 become 0, 1, 2.
	if !strings.Contains(buf.String(), "3 docs: [0 1 2]") {
		t.Errorf("recovered AND output = %q", buf.String())
	}
	buf.Reset()
	if err := runQuery(out, "inverted", "and", 5, "auto", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 docs: [1]") {
		t.Errorf("tombstoned doc resurfaced: %q", buf.String())
	}

	if err := runFromWAL(dir, "", "auto", "bvix3"); err == nil || !strings.Contains(err.Error(), "-out") {
		t.Errorf("missing -out: err = %v", err)
	}
	empty := filepath.Join(t.TempDir(), "fresh")
	if err := runFromWAL(empty, out, "auto", "bvix3"); err == nil {
		t.Error("empty live dir exported")
	}
	if err := runFromWAL(dir, out, "NoSuchCodec", "bvix3"); err == nil {
		t.Error("unknown codec accepted")
	}
}
