package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDocs(t *testing.T, docs []string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "docs.txt")
	if err := os.WriteFile(p, []byte(strings.Join(docs, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildAndQuery(t *testing.T) {
	docsFile := writeDocs(t, []string{
		"compressed bitmap indexes",
		"inverted lists for search",
		"bitmap and inverted compression compression",
	})
	idxFile := filepath.Join(t.TempDir(), "out.idx")
	if err := runBuild(docsFile, idxFile, "Roaring", "bvix3", 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runQuery(idxFile, "bitmap compression", "and", 5, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 docs: [2]") {
		t.Errorf("AND output = %q", buf.String())
	}
	buf.Reset()
	if err := runQuery(idxFile, "bitmap inverted", "or", 5, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3 docs") {
		t.Errorf("OR output = %q", buf.String())
	}
	buf.Reset()
	if err := runQuery(idxFile, "compression", "topk", 1, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "doc 2 (score 2)") {
		t.Errorf("TOPK output = %q", buf.String())
	}
}

func TestBuildErrors(t *testing.T) {
	docsFile := writeDocs(t, []string{"a doc"})
	if err := runBuild(docsFile, "", "Roaring", "bvix3", 0); err == nil {
		t.Error("missing -out accepted")
	}
	out := filepath.Join(t.TempDir(), "x.idx")
	if err := runBuild(docsFile, out, "NoSuchCodec", "bvix3", 0); err == nil {
		t.Error("unknown codec accepted")
	}
	if err := runBuild(filepath.Join(t.TempDir(), "missing.txt"), out, "Roaring", "bvix3", 0); err == nil {
		t.Error("missing input accepted")
	}
	if err := runBuild(docsFile, out, "Roaring", "bvix9", 0); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestQueryErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := runQuery("", "x", "and", 5, &buf); err == nil {
		t.Error("missing -index accepted")
	}
	docsFile := writeDocs(t, []string{"a doc"})
	idxFile := filepath.Join(t.TempDir(), "q.idx")
	if err := runBuild(docsFile, idxFile, "VB", "bvix2", 2); err != nil {
		t.Fatal(err)
	}
	if err := runQuery(idxFile, "doc", "nonsense", 5, &buf); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := runQuery(docsFile, "doc", "and", 5, &buf); err == nil {
		t.Error("non-index file accepted")
	}
}
