// Command bvindex builds a persistent inverted index over a text file
// (one document per line) and answers boolean / top-k queries against
// it — a minimal end-to-end tour of the §A.1 application on top of any
// codec in the module.
//
// Usage:
//
//	bvindex -build -in docs.txt -out docs.idx -codec Roaring
//	bvindex -build -in docs.txt -out docs.idx -shards 8 -format bvix2
//	bvindex -index docs.idx -query "compressed lists"            # AND
//	bvindex -index docs.idx -query "bitmap inverted" -mode or
//	bvindex -index docs.idx -query "compression" -mode topk -k 3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/codecs"
	"repro/internal/index"
)

func main() {
	var (
		build     = flag.Bool("build", false, "build an index instead of querying")
		inFile    = flag.String("in", "", "input documents, one per line (default stdin)")
		outFile   = flag.String("out", "", "output index file (build mode)")
		indexFile = flag.String("index", "", "index file to query")
		codecName = flag.String("codec", "Roaring", "codec for posting lists (build mode)")
		format    = flag.String("format", "bvix3", "output format: bvix3 | bvix2 (build mode)")
		shards    = flag.Int("shards", 0, "tokenizer shards for parallel build (0 = GOMAXPROCS)")
		query     = flag.String("query", "", "space-separated query terms")
		mode      = flag.String("mode", "and", "query mode: and | or | topk")
		k         = flag.Int("k", 5, "result count for -mode topk")
	)
	flag.Parse()

	switch {
	case *build:
		if err := runBuild(*inFile, *outFile, *codecName, *format, *shards); err != nil {
			fatal("%v", err)
		}
	case *query != "":
		if err := runQuery(*indexFile, *query, *mode, *k, os.Stdout); err != nil {
			fatal("%v", err)
		}
	default:
		fatal("nothing to do: pass -build or -query (see -help)")
	}
}

func runBuild(inFile, outFile, codecName, format string, shards int) error {
	if outFile == "" {
		return fmt.Errorf("build mode needs -out")
	}
	if format != "bvix3" && format != "bvix2" {
		return fmt.Errorf("unknown format %q (bvix3 | bvix2)", format)
	}
	codec, err := codecs.ByName(codecName)
	if err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	builder := index.NewBuilder(codec)
	builder.SetShards(shards)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	docs := 0
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			builder.AddDocument(line)
			docs++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if docs == 0 {
		return fmt.Errorf("empty corpus: no non-blank documents in input, refusing to write %s", outFile)
	}
	idx, err := builder.Build()
	if err != nil {
		return err
	}
	// WriteFile publishes atomically (temp file, fsync, rename, dir
	// sync): an unwritable path or a failure mid-write surfaces here and
	// never leaves a torn index at outFile.
	if err := idx.WriteFile(outFile, index.Format(format)); err != nil {
		return err
	}
	st, err := os.Stat(outFile)
	if err != nil {
		return err
	}
	fmt.Printf("indexed %d documents, %d terms, %d compressed posting bytes -> %s (%d bytes)\n",
		docs, idx.Terms(), idx.SizeBytes(), outFile, st.Size())
	return nil
}

func runQuery(indexFile, query, mode string, k int, w io.Writer) error {
	if indexFile == "" {
		return fmt.Errorf("query mode needs -index")
	}
	// OpenFile maps BVIX3 indexes zero-copy and materializes only the
	// postings the query touches; older formats load eagerly.
	idx, err := index.OpenFile(indexFile)
	if err != nil {
		return err
	}
	defer idx.Close()
	terms := index.Tokenize(query)
	switch mode {
	case "and":
		docs, err := idx.Conjunctive(terms...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "AND%v -> %d docs: %v\n", terms, len(docs), docs)
	case "or":
		docs, err := idx.Disjunctive(terms...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "OR%v -> %d docs: %v\n", terms, len(docs), docs)
	case "topk":
		results, err := idx.TopK(k, terms...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "TOP%d%v:\n", k, terms)
		for _, r := range results {
			fmt.Fprintf(w, "  doc %d (score %d)\n", r.Doc, r.Score)
		}
	default:
		return fmt.Errorf("unknown mode %q (and | or | topk)", mode)
	}
	return nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bvindex: "+format+"\n", args...)
	os.Exit(1)
}
