// Command bvindex builds a persistent inverted index over a text file
// (one document per line) and answers boolean / top-k queries against
// it — a minimal end-to-end tour of the §A.1 application on top of any
// codec in the module.
//
// Usage:
//
//	bvindex -build -in docs.txt -out docs.idx -codec Roaring
//	bvindex -build -in docs.txt -out docs.idx -codec auto        # adaptive per-list selection
//	bvindex -build -in docs.txt -out docs.idx -shards 8 -format bvix2
//	bvindex -build -in docs.txt -out docs.idx -format bvix3+impacts  # ranked annotations
//	bvindex -build -in docs.txt -partition 4 -out shards/shards.json # doc-partitioned shards
//	bvindex -index docs.idx -query "compressed lists"            # AND
//	bvindex -index docs.idx -query "bitmap inverted" -mode or
//	bvindex -index docs.idx -query "compression" -mode topk -k 3
//	bvindex -index docs.idx -query "compression" -mode topk -algo bmw
//	bvindex -from-wal data/live -out recovered.idx              # recover a live dir
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/ops"
	"repro/internal/shard"
)

func main() {
	var (
		build     = flag.Bool("build", false, "build an index instead of querying")
		fromWAL   = flag.String("from-wal", "", "recover a live-ingestion directory (WAL + segments) and compact it into a single index at -out")
		inFile    = flag.String("in", "", "input documents, one per line (default stdin)")
		outFile   = flag.String("out", "", "output index file (build mode)")
		indexFile = flag.String("index", "", "index file to query")
		codecName = flag.String("codec", "Roaring", "codec for posting lists, or \"auto\" for adaptive per-list selection (build mode)")
		format    = flag.String("format", "bvix3", "output format: bvix3 | bvix3+impacts | bvix2 (build mode)")
		shards    = flag.Int("shards", 0, "tokenizer shards for parallel build (0 = GOMAXPROCS)")
		partition = flag.Int("partition", 0, "split the corpus across N doc-partitioned serving shards, writing shard-XXXX.bvix files plus a checksummed shard-map manifest at -out (build mode; 0 = single index)")
		query     = flag.String("query", "", "space-separated query terms")
		mode      = flag.String("mode", "and", "query mode: and | or | topk")
		k         = flag.Int("k", 5, "result count for -mode topk")
		algo      = flag.String("algo", "auto", "top-k algorithm: auto | exhaustive | maxscore | bmw")
	)
	flag.Parse()
	if err := validateFlags(flag.CommandLine); err != nil {
		fatal("%v", err)
	}

	switch {
	case *fromWAL != "":
		if err := runFromWAL(*fromWAL, *outFile, *codecName, *format); err != nil {
			fatal("%v", err)
		}
	case *build && *partition > 0:
		if err := runPartition(*inFile, *outFile, *codecName, *format, *shards, *partition); err != nil {
			fatal("%v", err)
		}
	case *build:
		if err := runBuild(*inFile, *outFile, *codecName, *format, *shards); err != nil {
			fatal("%v", err)
		}
	case *query != "":
		if err := runQuery(*indexFile, *query, *mode, *k, *algo, os.Stdout); err != nil {
			fatal("%v", err)
		}
	default:
		fatal("nothing to do: pass -build or -query (see -help)")
	}
}

// validateFlags rejects nonsensical configurations right after parse,
// before any input is read or index touched, with a one-line cause
// (the bvserve convention).
func validateFlags(fs *flag.FlagSet) error {
	get := func(name string) any { return fs.Lookup(name).Value.(flag.Getter).Get() }
	if name := get("codec").(string); name != "auto" {
		if _, err := codecs.ByName(name); err != nil {
			return fmt.Errorf("-codec=%q: not a codec name (try one of %v, or \"auto\")", name, codecs.Names())
		}
	}
	if f := get("format").(string); f != "bvix3" && f != "bvix3+impacts" && f != "bvix2" {
		return fmt.Errorf("-format=%q: want bvix3, bvix3+impacts, or bvix2", f)
	}
	if m := get("mode").(string); m != "and" && m != "or" && m != "topk" {
		return fmt.Errorf("-mode=%q: want and, or, or topk", m)
	}
	switch get("algo").(string) {
	case "auto", "exhaustive", "maxscore", "bmw":
	default:
		return fmt.Errorf("-algo=%q: want auto, exhaustive, maxscore, or bmw", get("algo").(string))
	}
	if v := get("k").(int); v < 1 {
		return fmt.Errorf("-k=%d: result count must be at least 1", v)
	}
	if v := get("shards").(int); v < 0 || v > 4096 {
		return fmt.Errorf("-shards=%d: want 0 (one per CPU) through 4096", v)
	}
	if v := get("partition").(int); v < 0 || v > shard.MaxShards {
		return fmt.Errorf("-partition=%d: want 0 (single index) through %d", v, shard.MaxShards)
	}
	if v := get("partition").(int); v > 0 && !get("build").(bool) {
		return fmt.Errorf("-partition=%d: only meaningful with -build", v)
	}
	if dir := get("from-wal").(string); dir != "" {
		if get("build").(bool) {
			return fmt.Errorf("-from-wal: mutually exclusive with -build")
		}
		if get("query").(string) != "" {
			return fmt.Errorf("-from-wal: mutually exclusive with -query")
		}
		if f := get("format").(string); f == "bvix2" {
			return fmt.Errorf("-from-wal: -format=bvix2 not supported; recovered exports are bvix3 or bvix3+impacts")
		}
	}
	return nil
}

// runFromWAL opens a live-ingestion directory — replaying the WAL
// tail, applying tombstones — and compacts the surviving documents
// into one standalone index at outFile. This is the offline recovery
// path: point it at the data directory of a crashed or retired
// bvserve -live process and get a static, servable index back.
func runFromWAL(dir, outFile, codecName, format string) error {
	if outFile == "" {
		return fmt.Errorf("-from-wal needs -out (the recovered index path)")
	}
	var codec core.Codec
	if codecName != "auto" {
		c, err := codecs.ByName(codecName)
		if err != nil {
			return err
		}
		codec = c
	}
	l, err := index.OpenLive(dir, index.LiveOptions{Codec: codec})
	if err != nil {
		return fmt.Errorf("opening live directory %s: %w", dir, err)
	}
	defer l.Close()
	st := l.Stats()
	idx, err := l.Export()
	if err != nil {
		return err
	}
	if err := idx.WriteFile(outFile, index.Format(format)); err != nil {
		return err
	}
	fmt.Printf("recovered %d documents (%d sealed segments, %d tombstones applied, WAL seq %d) -> %s\n",
		idx.Docs(), st.Segments, st.Tombstones, st.WALSeq, outFile)
	return nil
}

// newBuilder constructs the configured posting builder ("auto" picks
// the adaptive per-list selector).
func newBuilder(codecName string, shards int) (*index.Builder, error) {
	var builder *index.Builder
	if codecName == "auto" {
		builder = index.NewAutoBuilder()
	} else {
		codec, err := codecs.ByName(codecName)
		if err != nil {
			return nil, err
		}
		builder = index.NewBuilder(codec)
	}
	builder.SetShards(shards)
	return builder, nil
}

func runBuild(inFile, outFile, codecName, format string, shards int) error {
	if outFile == "" {
		return fmt.Errorf("build mode needs -out")
	}
	builder, err := newBuilder(codecName, shards)
	if err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	docs := 0
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			builder.AddDocument(line)
			docs++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if docs == 0 {
		return fmt.Errorf("empty corpus: no non-blank documents in input, refusing to write %s", outFile)
	}
	idx, err := builder.Build()
	if err != nil {
		return err
	}
	// WriteFile publishes atomically (temp file, fsync, rename, dir
	// sync): an unwritable path or a failure mid-write surfaces here and
	// never leaves a torn index at outFile.
	if err := idx.WriteFile(outFile, index.Format(format)); err != nil {
		return err
	}
	st, err := os.Stat(outFile)
	if err != nil {
		return err
	}
	fmt.Printf("indexed %d documents, %d terms, %d compressed posting bytes -> %s (%d bytes)\n",
		docs, idx.Terms(), idx.SizeBytes(), outFile, st.Size())
	if codecName == "auto" {
		fmt.Printf("codec mix: %s\n", formatMix(idx.CodecMix()))
	}
	return nil
}

// readDocs loads the corpus into memory, one non-blank line per
// document — partitioning needs the whole corpus before it can deal
// documents round-robin.
func readDocs(inFile string) ([]string, error) {
	var r io.Reader = os.Stdin
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var docs []string
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			docs = append(docs, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return docs, nil
}

// runPartition builds the doc-partitioned serving layout: one
// independently compressed BVIX3 index per shard (shard-XXXX.bvix next
// to the manifest) plus the checksummed shard-map manifest at outFile.
// Each shard's lists are re-advised independently when -codec auto is
// in play: density is per-shard, so the adaptive builder may pick
// different codecs for the same term on different shards.
func runPartition(inFile, outFile, codecName, format string, shards, n int) error {
	if outFile == "" {
		return fmt.Errorf("partition mode needs -out (the shard-map manifest path)")
	}
	docs, err := readDocs(inFile)
	if err != nil {
		return err
	}
	if len(docs) == 0 {
		return fmt.Errorf("empty corpus: no non-blank documents in input, refusing to write %s", outFile)
	}
	// Partition refuses counts that would create empty shards (n >
	// number of documents) with a one-line cause.
	parts, err := shard.Partition(docs, n)
	if err != nil {
		return err
	}
	dir := filepath.Dir(outFile)
	m := &shard.Map{Version: shard.MapVersion, Partition: "mod", Shards: n, Docs: len(docs)}
	for s, part := range parts {
		builder, err := newBuilder(codecName, shards)
		if err != nil {
			return err
		}
		for _, d := range part {
			builder.AddDocument(d)
		}
		idx, err := builder.Build()
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		path := filepath.Join(dir, shard.FileName(s))
		if err := idx.WriteFile(path, index.Format(format)); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		entry, err := shard.EntryFor(path, idx.Docs(), idx.Terms())
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		m.Entries = append(m.Entries, entry)
		fmt.Printf("shard %d: %d documents, %d terms, %d compressed posting bytes -> %s\n",
			s, idx.Docs(), idx.Terms(), idx.SizeBytes(), path)
	}
	if err := shard.WriteMap(outFile, m); err != nil {
		return err
	}
	fmt.Printf("partitioned %d documents across %d shards -> %s\n", len(docs), n, outFile)
	return nil
}

// formatMix renders a codec mix deterministically, most-used first.
func formatMix(mix map[string]int) string {
	type kv struct {
		name string
		n    int
	}
	var rows []kv
	for name, n := range mix {
		if name == "" {
			name = "unknown"
		}
		rows = append(rows, kv{name, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].name < rows[j].name
	})
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprintf("%s=%d", r.name, r.n)
	}
	return strings.Join(parts, " ")
}

func runQuery(indexFile, query, mode string, k int, algo string, w io.Writer) error {
	if indexFile == "" {
		return fmt.Errorf("query mode needs -index")
	}
	// OpenFile maps BVIX3 indexes zero-copy and materializes only the
	// postings the query touches; older formats load eagerly.
	idx, err := index.OpenFile(indexFile)
	if err != nil {
		return err
	}
	defer idx.Close()
	terms := index.Tokenize(query)
	switch mode {
	case "and":
		docs, err := idx.Conjunctive(terms...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "AND%v -> %d docs: %v\n", terms, len(docs), docs)
	case "or":
		docs, err := idx.Disjunctive(terms...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "OR%v -> %d docs: %v\n", terms, len(docs), docs)
	case "topk":
		var stats ops.TopKStats
		results, err := idx.TopKWith(algo, k, &stats, terms...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "TOP%d%v [%s]:\n", k, terms, stats.Mode)
		for _, r := range results {
			fmt.Fprintf(w, "  doc %d (score %d)\n", r.Doc, r.Score)
		}
		fmt.Fprintf(w, "  (%d/%d blocks decoded, %d docs scored)\n",
			stats.BlocksDecoded, stats.BlocksTotal, stats.DocsScored)
	default:
		return fmt.Errorf("unknown mode %q (and | or | topk)", mode)
	}
	return nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bvindex: "+format+"\n", args...)
	os.Exit(1)
}
