package main

import (
	"context"
	"encoding/json"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/load"
)

func discard() *log.Logger { return log.New(nopWriter{}, "", 0) }

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestValidateRejectsNonsense(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-docs", "0"}, "-docs"},
		{[]string{"-vocab", "1"}, "-vocab"},
		{[]string{"-queries", "-5"}, "-queries"},
		{[]string{"-rate", "0"}, "-rate"},
		{[]string{"-duration", "-1s"}, "-duration"},
		{[]string{"-timeout", "0"}, "-timeout"},
		{[]string{"-max-error-rate", "1.5"}, "-max-error-rate"},
		{[]string{"-mix", "1,2,3"}, "-mix"},
		{[]string{"-mix", "0,0,0,0"}, "-mix"},
		{[]string{"-mix", "a,b,c,d"}, "-mix"},
		{[]string{"-target", "http://x", "-serve-bin", "y"}, "mutually exclusive"},
		{[]string{"-target", "http://x", "-chaos"}, "-chaos"},
		{[]string{"-router", "-1"}, "-router"},
		{[]string{"-router", "2", "-target", "http://x"}, "-router"},
		{[]string{"-router", "8", "-docs", "4"}, "empty shards"},
		{[]string{"-ingest"}, "-serve-bin"},
		{[]string{"-ingest", "-serve-bin", "x", "-chaos"}, "-ingest"},
		{[]string{"-ingest", "-serve-bin", "x", "-router", "2"}, "-router"},
		{[]string{"-ingest", "-serve-bin", "x", "-target", "http://x"}, "mutually exclusive"},
		{[]string{"-ingest", "-serve-bin", "x", "-write-index", "y"}, "-write-index"},
	}
	for _, c := range cases {
		if _, err := parseFlags(c.args, discard()); err == nil {
			t.Errorf("args %v accepted", c.args)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("args %v: error %q does not name %q", c.args, err, c.want)
		}
	}
	if _, err := parseFlags([]string{"-rate", "50", "-mix", "1, 2, 3, 4"}, discard()); err != nil {
		t.Errorf("valid args rejected: %v", err)
	}
}

func TestParseMix(t *testing.T) {
	m, err := parseMix("4,3,2,1")
	if err != nil || m != (load.Mix{Point: 4, And: 3, Or: 2, TopK: 1}) {
		t.Fatalf("parseMix = %+v, %v", m, err)
	}
	if m, err = parseMix("0,0,0,5"); err != nil || m.TopK != 5 {
		t.Fatalf("topk-only mix = %+v, %v", m, err)
	}
}

func TestWriteIndexMode(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "corpus.bvix")
	err := run(context.Background(), []string{
		"-write-index", out, "-docs", "50", "-vocab", "20",
	}, discard())
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(out)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("index file: %v", err)
	}
}

func TestRunInProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a server and a 2s load run")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "LOAD_test.json")
	err := run(context.Background(), []string{
		"-docs", "200", "-vocab", "40", "-queries", "64",
		"-rate", "80", "-duration", "2s",
		"-slo-p99", "2s", "-min-requests", "50",
		"-out", out,
	}, discard())
	if err != nil {
		t.Fatalf("smoke run failed: %v", err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.Pass || rep.Requests < 50 {
		t.Fatalf("pass=%v requests=%d classes=%v violations=%v",
			rep.Pass, rep.Requests, rep.Classes, rep.Gates.Violations)
	}
	if rep.Classes["incorrect"] != 0 || rep.Classes["error"] != 0 {
		t.Fatalf("bad classes: %v", rep.Classes)
	}
}

func TestRunChaosInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes several seconds")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "LOAD_chaos_test.json")
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	err := run(ctx, []string{
		"-chaos",
		"-docs", "300", "-vocab", "50", "-queries", "128",
		"-rate", "100", "-duration", "5s",
		"-slo-p99", "2s", "-min-requests", "200",
		"-out", out,
	}, discard())
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("violations: %v", rep.Gates.Violations)
	}
	if len(rep.Events) != 6 {
		t.Fatalf("expected 6 chaos events, got %d: %+v", len(rep.Events), rep.Events)
	}
	if len(rep.Windows) != 2 {
		t.Fatalf("expected degraded+blast windows, got %+v", rep.Windows)
	}
}

// TestRunRouterInProcess: -router partitions the corpus behind an
// in-process router fleet and the full mixed workload replays against
// it; ground truth comes from the unpartitioned index, so a clean pass
// proves the scatter-gather merge is exact under live HTTP load.
func TestRunRouterInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a 3-shard fleet and a 2s load run")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "LOAD_router_test.json")
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	err := run(ctx, []string{
		"-router", "3",
		"-docs", "200", "-vocab", "40", "-queries", "64",
		"-rate", "80", "-duration", "2s",
		"-slo-p99", "2s", "-min-requests", "50",
		"-out", out,
	}, discard())
	if err != nil {
		t.Fatalf("router run failed: %v", err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Requests < 50 {
		t.Fatalf("pass=%v requests=%d classes=%v violations=%v",
			rep.Pass, rep.Requests, rep.Classes, rep.Gates.Violations)
	}
	if rep.Classes["correct"] != rep.Requests {
		t.Fatalf("not every response correct: %v", rep.Classes)
	}
}

// TestRunRouterChaos: -router -chaos SIGKILLs one shard mid-run; the
// report must show the shard-kill drill with zero incorrect, zero
// unclassified errors, and zero blast amnesty.
func TestRunRouterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("router chaos run takes several seconds")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "LOAD_router_chaos_test.json")
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	err := run(ctx, []string{
		"-router", "4", "-chaos",
		"-docs", "300", "-vocab", "50", "-queries", "128",
		"-rate", "100", "-duration", "4s",
		"-slo-p99", "2s", "-min-requests", "200",
		"-out", out,
	}, discard())
	if err != nil {
		t.Fatalf("router chaos run failed: %v", err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("violations: %v", rep.Gates.Violations)
	}
	if len(rep.Events) != 2 {
		t.Fatalf("expected 2 chaos events, got %d: %+v", len(rep.Events), rep.Events)
	}
	for _, e := range rep.Events {
		if e.Err != "" {
			t.Errorf("chaos step %s failed: %s", e.Name, e.Err)
		}
	}
	if rep.Classes["incorrect"] != 0 || rep.Classes["error"] != 0 || rep.Classes["blast"] != 0 {
		t.Fatalf("bad classes: %v", rep.Classes)
	}
	if rep.Classes["degradedPartial"] == 0 {
		t.Fatalf("shard kill left no observable degraded partials: %v", rep.Classes)
	}
}
