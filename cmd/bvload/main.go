// Command bvload is the production load harness for bvserve: an
// open-loop (coordinated-omission-safe) generator that replays a
// zipfian mix of point lookups, AND/OR intersections, and ranked top-k
// against a live server, checks every response against precomputed
// ground truth, and gates the run on latency/correctness SLOs. With
// -chaos it also runs the orchestrator: hot reloads (SIGHUP and POST
// /reload), a corruption-induced degraded-mode transition, and a
// kill/restart — requiring every response to be correct, a clean shed,
// or a documented degraded partial, with latency SLOs holding outside
// declared blast windows.
//
// Usage:
//
//	bvload -chaos -duration 30s -rate 150 -out results/LOAD_chaos.json
//	bvload -serve-bin bin/bvserve -chaos -out results/LOAD_chaos.json
//	bvload -router 4 -chaos -out results/LOAD_router.json
//	bvload -write-index /tmp/load.bvix            # emit corpus index, then:
//	bvload -target http://127.0.0.1:8080 -rate 200
//
// Without -serve-bin or -target, bvload serves the generated index
// from an in-process server — the zero-setup mode CI uses. With
// -serve-bin it manages a real bvserve subprocess (SIGHUP/SIGKILL
// chaos). With -target it replays against an external server, which
// must be serving the index emitted by -write-index with the same
// -seed/-docs/-vocab/-codec (the ground truth is recomputed locally).
//
// With -router N the corpus is doc-partitioned across N shard servers
// fronted by an in-process bvrouter, and the load replays against the
// router; ground truth still comes from the full unpartitioned index,
// so the run proves the scatter-gather merge is exact. -chaos in this
// mode runs the scale-out drill instead of the single-server storm: it
// SIGKILLs one shard mid-run (a real subprocess when -serve-bin is
// set) and requires every response during the outage to classify as
// correct or degraded-partial — the router never blasts.
//
// With -ingest the harness switches from read replay to the live
// ingestion storm: it boots `bvserve -live` (requires -serve-bin),
// streams ingest/delete/verify traffic with a unique sentinel term per
// document, SIGKILLs the server mid-ingest twice, restarts it over the
// same directory, and gates the run on zero lost acked writes, zero
// resurrected acked deletes, and zero incorrect responses. The report
// lands at -out (default results/LOAD_ingest.json in this mode).
//
// The exit status is 0 only when every SLO gate passed; the full
// machine-readable report lands at -out.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/codecs"
	"repro/internal/index"
	"repro/internal/load"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], log.Default()); err != nil {
		log.Fatalf("bvload: %v", err)
	}
}

type options struct {
	target     string
	serveBin   string
	writeIndex string
	chaos      bool
	ingest     bool
	router     int

	codec string
	docs  int
	vocab int
	seed  int64

	queries  int
	mix      string
	rate     float64
	duration time.Duration
	timeout  time.Duration

	sloP50       time.Duration
	sloP99       time.Duration
	sloP999      time.Duration
	maxErrorRate float64
	minRequests  int64

	out string
}

func parseFlags(args []string, logger *log.Logger) (*options, error) {
	fs := flag.NewFlagSet("bvload", flag.ContinueOnError)
	o := &options{}
	fs.StringVar(&o.target, "target", "", "external server base URL (default: manage a server locally)")
	fs.StringVar(&o.serveBin, "serve-bin", "", "bvserve binary to manage as a subprocess")
	fs.StringVar(&o.writeIndex, "write-index", "", "write the generated corpus index to this path and exit")
	fs.BoolVar(&o.chaos, "chaos", false, "run the chaos orchestrator during the load run (managed server only)")
	fs.BoolVar(&o.ingest, "ingest", false, "run the live-ingestion kill/recovery storm instead of read replay (requires -serve-bin)")
	fs.IntVar(&o.router, "router", 0, "partition the corpus across this many shards behind an in-process router (0 = single server)")

	fs.StringVar(&o.codec, "codec", "Roaring", "posting-list codec for the generated index")
	fs.IntVar(&o.docs, "docs", 2000, "generated corpus size in documents")
	fs.IntVar(&o.vocab, "vocab", 200, "generated vocabulary size in terms")
	fs.Int64Var(&o.seed, "seed", 1, "master seed for corpus, workload, and corruption")

	fs.IntVar(&o.queries, "queries", 512, "distinct queries in the replayed workload")
	fs.StringVar(&o.mix, "mix", "4,3,2,1", "traffic mix weights point,and,or,topk")
	fs.Float64Var(&o.rate, "rate", 150, "offered load in queries/second (open loop)")
	fs.DurationVar(&o.duration, "duration", 30*time.Second, "load run length")
	fs.DurationVar(&o.timeout, "timeout", 2*time.Second, "per-request client budget")

	fs.DurationVar(&o.sloP50, "slo-p50", 0, "steady-state p50 latency gate (0 = ungated)")
	fs.DurationVar(&o.sloP99, "slo-p99", 250*time.Millisecond, "steady-state p99 latency gate (0 = ungated)")
	fs.DurationVar(&o.sloP999, "slo-p999", 0, "steady-state p99.9 latency gate (0 = ungated)")
	fs.Float64Var(&o.maxErrorRate, "max-error-rate", 0, "max unclassified-error fraction")
	fs.Int64Var(&o.minRequests, "min-requests", 100, "fail runs that issued fewer requests than this")

	fs.StringVar(&o.out, "out", "results/LOAD_run.json", "report output path")
	fs.SetOutput(logger.Writer())
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := validate(o); err != nil {
		return nil, err
	}
	return o, nil
}

// validate rejects nonsensical configurations with a one-line cause.
func validate(o *options) error {
	switch {
	case o.docs < 1:
		return fmt.Errorf("-docs=%d: corpus must have at least 1 document", o.docs)
	case o.vocab < 2:
		return fmt.Errorf("-vocab=%d: vocabulary must have at least 2 terms", o.vocab)
	case o.queries < 1:
		return fmt.Errorf("-queries=%d: workload must have at least 1 query", o.queries)
	case o.rate <= 0:
		return fmt.Errorf("-rate=%g: offered load must be positive", o.rate)
	case o.duration <= 0:
		return fmt.Errorf("-duration=%s: run length must be positive", o.duration)
	case o.timeout <= 0:
		return fmt.Errorf("-timeout=%s: request budget must be positive", o.timeout)
	case o.maxErrorRate < 0 || o.maxErrorRate > 1:
		return fmt.Errorf("-max-error-rate=%g: must be a fraction in [0,1]", o.maxErrorRate)
	case o.router < 0:
		return fmt.Errorf("-router=%d: shard count cannot be negative", o.router)
	case o.router > 0 && o.target != "":
		return fmt.Errorf("-router manages its own shard topology; it cannot front an external -target")
	case o.router > 0 && o.router > o.docs:
		return fmt.Errorf("-router=%d over %d docs would create empty shards", o.router, o.docs)
	case o.target != "" && o.serveBin != "":
		return fmt.Errorf("-target and -serve-bin are mutually exclusive")
	case o.target != "" && o.chaos:
		return fmt.Errorf("-chaos needs a managed server; it cannot brutalize an external -target")
	case o.ingest && o.serveBin == "":
		return fmt.Errorf("-ingest SIGKILLs a real bvserve -live subprocess; it requires -serve-bin")
	case o.ingest && o.chaos:
		return fmt.Errorf("-ingest is its own storm; it cannot be combined with -chaos")
	case o.ingest && o.router > 0:
		return fmt.Errorf("-ingest drives a single live server; it cannot be combined with -router")
	case o.ingest && o.target != "":
		return fmt.Errorf("-ingest manages its own server lifecycle; it cannot target an external -target")
	case o.ingest && o.writeIndex != "":
		return fmt.Errorf("-ingest builds its index from live writes; -write-index does not apply")
	}
	if _, err := parseMix(o.mix); err != nil {
		return err
	}
	return nil
}

// parseMix parses "point,and,or,topk" weights.
func parseMix(s string) (load.Mix, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return load.Mix{}, fmt.Errorf("-mix=%q: want four comma-separated weights point,and,or,topk", s)
	}
	var w [4]int
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &w[i]); err != nil || w[i] < 0 {
			return load.Mix{}, fmt.Errorf("-mix=%q: weight %d is not a non-negative integer", s, i+1)
		}
	}
	m := load.Mix{Point: w[0], And: w[1], Or: w[2], TopK: w[3]}
	if m.Point+m.And+m.Or+m.TopK == 0 {
		return load.Mix{}, fmt.Errorf("-mix=%q: at least one weight must be positive", s)
	}
	return m, nil
}

func run(ctx context.Context, args []string, logger *log.Logger) error {
	o, err := parseFlags(args, logger)
	if err != nil {
		return err
	}
	if o.ingest {
		return runIngest(ctx, o, logger)
	}
	mix, _ := parseMix(o.mix)

	// Deterministic corpus + index: the same bytes the target serves
	// (managed modes write it; -target mode trusts the operator ran
	// -write-index with identical parameters).
	logger.Printf("generating corpus: %d docs, %d terms, seed %d", o.docs, o.vocab, o.seed)
	docs, vocab := load.GenCorpus(o.seed, o.docs, o.vocab)
	codec, err := codecs.ByName(o.codec)
	if err != nil {
		return err
	}
	b := index.NewBuilder(codec)
	for _, d := range docs {
		b.AddDocument(d)
	}
	idx, err := b.Build()
	if err != nil {
		return err
	}

	if o.writeIndex != "" {
		if err := idx.WriteFile(o.writeIndex, index.FormatBVIX3Impacts); err != nil {
			return err
		}
		logger.Printf("wrote %s (%d docs, %d terms); serve it with: bvserve -index %s",
			o.writeIndex, idx.Docs(), idx.Terms(), o.writeIndex)
		return nil
	}

	w, err := load.BuildWorkload(idx, vocab, o.queries, o.seed+1, mix)
	if err != nil {
		return err
	}

	// Resolve the target: external URL, a sharded router fleet, a
	// bvserve subprocess, or the in-process server.
	baseURL := o.target
	var ctrl load.Controller
	var rig *load.RouterRig
	if o.router > 0 {
		dir, err := os.MkdirTemp("", "bvload-shards-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		rig, err = load.NewRouterRig(dir, docs, o.codec, o.router, o.serveBin, logger)
		if err != nil {
			return err
		}
		if err := rig.Start(ctx); err != nil {
			return err
		}
		defer rig.Stop()
		baseURL = rig.BaseURL()
		logger.Printf("router fronting %d shards ready at %s", o.router, baseURL)
	} else if baseURL == "" {
		dir, err := os.MkdirTemp("", "bvload-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		idxPath := filepath.Join(dir, "load.bvix")
		if err := idx.WriteFile(idxPath, index.FormatBVIX3Impacts); err != nil {
			return err
		}
		if o.serveBin != "" {
			ctrl, err = load.NewProcServer(o.serveBin, idxPath, logger.Writer())
		} else {
			ctrl, err = load.NewLocalServer(idxPath, logger)
		}
		if err != nil {
			return err
		}
		if err := ctrl.Start(ctx); err != nil {
			return err
		}
		defer ctrl.Stop()
		baseURL = ctrl.BaseURL()
		logger.Printf("managed server ready at %s", baseURL)
	}

	win := load.NewWindows()
	var chaosDone chan []load.Event
	switch {
	case o.chaos && rig != nil:
		chaosDone = make(chan []load.Event, 1)
		go func() {
			events, cerr := load.RunRouterChaos(ctx, load.RouterChaosConfig{
				Duration: o.duration,
			}, rig, win)
			if cerr != nil {
				logger.Printf("router chaos aborted: %v", cerr)
			}
			chaosDone <- events
		}()
		logger.Printf("shard-kill drill scheduled across %s", o.duration)
	case o.chaos:
		chaosDone = make(chan []load.Event, 1)
		go func() {
			events, cerr := load.RunChaos(ctx, load.ChaosConfig{
				Duration:    o.duration,
				CorruptSeed: o.seed + 2,
			}, ctrl, win)
			if cerr != nil {
				logger.Printf("chaos orchestrator aborted: %v", cerr)
			}
			chaosDone <- events
		}()
		logger.Printf("chaos storm scheduled across %s", o.duration)
	}

	logger.Printf("offering %.0f qps for %s at %s", o.rate, o.duration, baseURL)
	rep, err := load.Run(ctx, w, load.Options{
		BaseURL:  baseURL,
		Rate:     o.rate,
		Duration: o.duration,
		Timeout:  o.timeout,
		Seed:     o.seed + 3,
	}, win)
	if err != nil {
		return err
	}
	if chaosDone != nil {
		rep.Events = <-chaosDone
	}

	rep.Evaluate(load.Gates{
		MaxP50:       o.sloP50,
		MaxP99:       o.sloP99,
		MaxP999:      o.sloP999,
		MaxErrorRate: o.maxErrorRate,
		MinRequests:  o.minRequests,
	})
	if err := rep.WriteFile(o.out); err != nil {
		return err
	}

	logger.Printf("%d requests: %v", rep.Requests, rep.Classes)
	logger.Printf("steady latency: p50=%s p99=%s p999=%s max=%s",
		time.Duration(rep.Steady.P50Ns), time.Duration(rep.Steady.P99Ns),
		time.Duration(rep.Steady.P999Ns), time.Duration(rep.Steady.MaxNs))
	logger.Printf("report: %s", o.out)
	if !rep.Pass {
		return fmt.Errorf("SLO gates failed:\n  %s", strings.Join(rep.Gates.Violations, "\n  "))
	}
	logger.Printf("PASS: all SLO gates held")
	return nil
}

// runIngest is the -ingest mode: a live-ingestion kill/recovery storm
// against a managed `bvserve -live` subprocess.
func runIngest(ctx context.Context, o *options, logger *log.Logger) error {
	out := o.out
	if out == "results/LOAD_run.json" { // flag default; ingest mode has its own
		out = "results/LOAD_ingest.json"
	}
	dir, err := os.MkdirTemp("", "bvload-live-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	logger.Printf("live ingest storm: %.0f ops/s for %s, seed %d, 2 SIGKILLs", o.rate, o.duration, o.seed)
	rep, err := load.RunIngestChaos(ctx, load.IngestChaosConfig{
		Bin:      o.serveBin,
		Dir:      filepath.Join(dir, "live"),
		Duration: o.duration,
		Rate:     o.rate,
		Seed:     o.seed,
		LogTo:    logger.Writer(),
	})
	if rep != nil {
		if werr := rep.WriteFile(out); werr != nil {
			return werr
		}
		logger.Printf("%d ops: %d acked ingests, %d acked deletes, %d verifies, %d limbo, %d sheds, %d kills",
			rep.Ops, rep.AckedAdds, rep.AckedDeletes, rep.Verifies,
			rep.LimboAdds+rep.LimboDeletes, rep.Sheds, rep.Kills)
		logger.Printf("final sweep: %d sentinels checked", rep.FinalSweepDocs)
		logger.Printf("report: %s", out)
	}
	if err != nil {
		return err
	}
	if !rep.Pass {
		return fmt.Errorf("ingest gates failed:\n  %s", strings.Join(rep.Violations, "\n  "))
	}
	logger.Printf("PASS: zero lost acked writes, zero resurrected deletes, zero incorrect responses")
	return nil
}
