package main

import "testing"

func TestGenerate(t *testing.T) {
	for _, dist := range []string{"uniform", "zipf", "markov"} {
		vals, err := generate(dist, 500, 18, 1.0, 0.01, 8, 7)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if len(vals) == 0 {
			t.Errorf("%s: no values", dist)
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] <= vals[i-1] {
				t.Fatalf("%s: not strictly increasing at %d", dist, i)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("gaussian", 10, 18, 1, 0.1, 8, 1); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := generate("uniform", 10, 0, 1, 0.1, 8, 1); err == nil {
		t.Error("domain 2^0 accepted")
	}
	if _, err := generate("uniform", 10, 40, 1, 0.1, 8, 1); err == nil {
		t.Error("domain 2^40 accepted")
	}
}
