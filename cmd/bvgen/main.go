// Command bvgen emits synthetic sorted integer lists (the paper's §5
// workloads) as text, one value per line — pipe into bvzip or save as
// test fixtures.
//
// Usage:
//
//	bvgen -n 100000 -dist zipf -domain 24 > ids.txt
//	bvgen -dist markov -density 0.05 -domain 20
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
)

func main() {
	var (
		n         = flag.Int("n", 10000, "list size (uniform/zipf) ")
		dist      = flag.String("dist", "uniform", "distribution: uniform|zipf|markov")
		domainLog = flag.Int("domain", 24, "domain size as a power of two")
		skew      = flag.Float64("skew", 1.0, "zipf skewness factor f")
		density   = flag.Float64("density", 0.01, "markov density ω")
		cluster   = flag.Float64("cluster", 8, "markov clustering factor f")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	values, err := generate(*dist, *n, *domainLog, *skew, *density, *cluster, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvgen: %v\n", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, v := range values {
		fmt.Fprintln(w, v)
	}
}

// generate dispatches to the synthetic generators (§5).
func generate(dist string, n, domainLog int, skew, density, cluster float64, seed int64) ([]uint32, error) {
	if domainLog < 1 || domainLog > 31 {
		return nil, fmt.Errorf("domain 2^%d out of range [2^1, 2^31]", domainLog)
	}
	domain := uint32(1) << uint(domainLog)
	switch dist {
	case "uniform":
		return gen.Uniform(n, domain, seed), nil
	case "zipf":
		return gen.Zipf(n, domain, skew, seed), nil
	case "markov":
		return gen.Markov(domain, density, cluster, seed), nil
	default:
		return nil, fmt.Errorf("unknown distribution %q", dist)
	}
}
