// Command bvrouter is the scatter-gather front of a doc-partitioned
// deployment: it fans point/AND/OR/top-k queries out to every shard in
// parallel, merges the per-shard answers exactly (sorted merge for
// postings, strict-beat heap merge for rankings), and degrades
// gracefully when a shard is down — a partial answer with the dead
// shards named, never a failed query. Tail latency is cut with
// load-based pick-of-two replica routing and hedged requests: a backup
// attempt fires on another replica after an adaptive p99-based delay
// and the first success cancels the loser.
//
// Usage:
//
//	bvrouter -map shards/shards.json -addr :8090            # in-process shards
//	bvrouter -shards "http://a:8080,http://b:8080;http://c:8080,http://d:8080"
//	                                                        # 2 shards x 2 bvserve replicas
//
//	GET /search?q=compressed+lists&mode=and                 # same API as bvserve,
//	GET /search?q=bitmap&mode=topk&k=3&algo=bmw             # plus partial/degradedShards
//	GET /stats                                              # per-shard latency/hedge/degraded
//	GET /healthz                                            # ok | partial | down
//	GET /readyz
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/index"
	"repro/internal/shard"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], log.Default()); err != nil {
		log.Fatalf("bvrouter: %v", err)
	}
}

// run is the whole program behind flag parsing and signal wiring,
// returning errors so shutdown is testable and deferred cleanup runs.
func run(ctx context.Context, args []string, logger *log.Logger) error {
	fs := flag.NewFlagSet("bvrouter", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8090", "listen address")
		mapFile  = fs.String("map", "", "shard-map manifest (bvindex -partition); shards open in-process")
		topology = fs.String("shards", "", "remote topology: replicas comma-separated, shards semicolon-separated, e.g. \"http://a:8080,http://b:8080;http://c:8080\"")
		noVerify = fs.Bool("no-verify", false, "skip shard-file checksum verification against the manifest (with -map)")

		hedge    = fs.Bool("hedge", true, "hedge slow shard attempts onto another replica")
		hedgeMin = fs.Duration("hedge-min", time.Millisecond, "lower clamp on the adaptive hedge delay")
		hedgeMax = fs.Duration("hedge-max", 50*time.Millisecond, "upper clamp on the adaptive hedge delay (also the cold-start delay)")
		shardTO  = fs.Duration("shard-timeout", 2*time.Second, "per-shard budget for one query, all attempts included")

		maxTerms = fs.Int("max-terms", 16, "max query terms before 400")
		maxK     = fs.Int("max-k", 100000, "max top-k before 400")
		drain    = fs.Duration("drain", 10*time.Second, "graceful shutdown deadline for in-flight requests")
	)
	fs.SetOutput(logger.Writer())
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFlags(fs); err != nil {
		return err
	}

	backends, cleanup, err := buildBackends(*mapFile, *topology, !*noVerify, logger)
	if err != nil {
		return err
	}
	defer cleanup()

	router, err := shard.NewRouter(shard.RouterConfig{
		Hedge:        *hedge,
		HedgeMin:     *hedgeMin,
		HedgeMax:     *hedgeMax,
		ShardTimeout: *shardTO,
	}, backends)
	if err != nil {
		return err
	}
	replicas := 0
	for _, b := range backends {
		replicas += len(b)
	}
	logger.Printf("bvrouter: %d shards, %d replicas, hedge=%v [%s..%s], shard timeout %s",
		len(backends), replicas, *hedge, *hedgeMin, *hedgeMax, *shardTO)
	srv := shard.NewServer(router, shard.ServerConfig{
		MaxQueryTerms: *maxTerms,
		MaxK:          *maxK,
		DrainDeadline: *drain,
		Logger:        logger,
	})
	return srv.Run(ctx, *addr)
}

// validateFlags rejects nonsensical configurations right after parse,
// before any shard is opened or socket bound, with a one-line cause.
func validateFlags(fs *flag.FlagSet) error {
	get := func(name string) any { return fs.Lookup(name).Value.(flag.Getter).Get() }
	mapFile := get("map").(string)
	topology := get("shards").(string)
	switch {
	case mapFile == "" && topology == "":
		return fmt.Errorf("pass -map (in-process shards) or -shards (remote replicas)")
	case mapFile != "" && topology != "":
		return fmt.Errorf("-map and -shards are mutually exclusive")
	}
	if topology != "" {
		if _, err := parseTopology(topology); err != nil {
			return err
		}
	}
	for _, name := range []string{"hedge-min", "hedge-max", "shard-timeout", "drain"} {
		if d := get(name).(time.Duration); d <= 0 {
			return fmt.Errorf("-%s=%s: duration must be positive", name, d)
		}
	}
	if get("hedge-min").(time.Duration) > get("hedge-max").(time.Duration) {
		return fmt.Errorf("-hedge-min=%s exceeds -hedge-max=%s", get("hedge-min"), get("hedge-max"))
	}
	for _, name := range []string{"max-terms", "max-k"} {
		if v := get(name).(int); v <= 0 {
			return fmt.Errorf("-%s=%d: limit must be positive", name, v)
		}
	}
	if get("addr").(string) == "" {
		return fmt.Errorf("-addr: listen address must not be empty")
	}
	return nil
}

// parseTopology parses the -shards grammar: shards separated by ';',
// each shard's replica URLs separated by ','.
func parseTopology(s string) ([][]string, error) {
	var out [][]string
	for i, shardSpec := range strings.Split(s, ";") {
		shardSpec = strings.TrimSpace(shardSpec)
		if shardSpec == "" {
			return nil, fmt.Errorf("-shards: shard %d is empty", i)
		}
		var reps []string
		for j, u := range strings.Split(shardSpec, ",") {
			u = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(u), "/"))
			if u == "" {
				return nil, fmt.Errorf("-shards: shard %d replica %d is empty", i, j)
			}
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return nil, fmt.Errorf("-shards: shard %d replica %q: want an http(s):// URL", i, u)
			}
			reps = append(reps, u)
		}
		out = append(out, reps)
	}
	return out, nil
}

// buildBackends assembles the replica matrix from either a local shard
// map (every shard file opened in-process, verified against the
// manifest's checksums first) or a remote topology of bvserve URLs.
func buildBackends(mapFile, topology string, verify bool, logger *log.Logger) ([][]shard.Backend, func(), error) {
	if mapFile != "" {
		return loadLocalShards(mapFile, verify, logger)
	}
	urls, err := parseTopology(topology)
	if err != nil {
		return nil, nil, err
	}
	// One shared transport sized so hedged attempts to the same host
	// never queue behind each other's idle-connection limit.
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	backends := make([][]shard.Backend, len(urls))
	for s, reps := range urls {
		for _, u := range reps {
			backends[s] = append(backends[s], &shard.HTTPBackend{Base: u, Client: client})
		}
	}
	return backends, func() {}, nil
}

// loadLocalShards opens every shard file named by the manifest as an
// in-process backend (one replica per shard — hedging needs remote
// replicas to have anywhere to go).
func loadLocalShards(mapFile string, verify bool, logger *log.Logger) ([][]shard.Backend, func(), error) {
	m, err := shard.LoadMap(mapFile)
	if err != nil {
		return nil, nil, err
	}
	dir := filepath.Dir(mapFile)
	if verify {
		if err := m.VerifyFiles(dir); err != nil {
			return nil, nil, err
		}
	}
	var opened []*index.Index
	closeAll := func() {
		for _, idx := range opened {
			idx.Close()
		}
	}
	backends := make([][]shard.Backend, m.Shards)
	for s, e := range m.Entries {
		idx, err := index.OpenFile(filepath.Join(dir, e.File))
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("shard %d: %w", s, err)
		}
		opened = append(opened, idx)
		backends[s] = []shard.Backend{&shard.IndexBackend{Idx: idx, Label: e.File}}
		logger.Printf("bvrouter: shard %d: %s (%d docs, %d terms)", s, e.File, idx.Docs(), idx.Terms())
	}
	return backends, closeAll, nil
}
