package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/codecs"
	"repro/internal/index"
	"repro/internal/shard"
)

// writeShardLayout partitions a small corpus and writes the shard
// files + manifest the way `bvindex -partition` does.
func writeShardLayout(t *testing.T, docs []string, n int) string {
	t.Helper()
	dir := t.TempDir()
	parts, err := shard.Partition(docs, n)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := codecs.ByName("VB")
	if err != nil {
		t.Fatal(err)
	}
	m := &shard.Map{Version: shard.MapVersion, Partition: "mod", Shards: n, Docs: len(docs)}
	for s, part := range parts {
		b := index.NewBuilder(codec)
		for _, d := range part {
			b.AddDocument(d)
		}
		idx, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, shard.FileName(s))
		if err := idx.WriteFile(path, index.FormatBVIX3Impacts); err != nil {
			t.Fatal(err)
		}
		e, err := shard.EntryFor(path, idx.Docs(), idx.Terms())
		if err != nil {
			t.Fatal(err)
		}
		m.Entries = append(m.Entries, e)
	}
	mapPath := filepath.Join(dir, "shards.json")
	if err := shard.WriteMap(mapPath, m); err != nil {
		t.Fatal(err)
	}
	return mapPath
}

func testDocs() []string {
	docs := make([]string, 40)
	for i := range docs {
		docs[i] = fmt.Sprintf("common doc%d", i)
		if i%2 == 0 {
			docs[i] += " even"
		}
		if i%3 == 0 {
			docs[i] += " third third"
		}
	}
	return docs
}

func parseArgs(t *testing.T, args []string) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet("bvrouter", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.String("addr", ":8090", "")
	fs.String("map", "", "")
	fs.String("shards", "", "")
	fs.Bool("no-verify", false, "")
	fs.Bool("hedge", true, "")
	fs.Duration("hedge-min", time.Millisecond, "")
	fs.Duration("hedge-max", 50*time.Millisecond, "")
	fs.Duration("shard-timeout", 2*time.Second, "")
	fs.Int("max-terms", 16, "")
	fs.Int("max-k", 100000, "")
	fs.Duration("drain", 10*time.Second, "")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestValidateFlags(t *testing.T) {
	bad := [][]string{
		{},                                   // neither -map nor -shards
		{"-map", "x", "-shards", "http://a"}, // both
		{"-shards", "http://a;;http://b"},    // empty shard
		{"-shards", "ftp://a"},               // bad scheme
		{"-map", "x", "-hedge-min", "-1ms"},
		{"-map", "x", "-hedge-min", "10ms", "-hedge-max", "5ms"},
		{"-map", "x", "-shard-timeout", "0s"},
		{"-map", "x", "-max-k", "0"},
		{"-map", "x", "-addr", ""},
	}
	for _, args := range bad {
		if err := validateFlags(parseArgs(t, args)); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	if err := validateFlags(parseArgs(t, []string{"-map", "shards.json"})); err != nil {
		t.Errorf("good -map args rejected: %v", err)
	}
	if err := validateFlags(parseArgs(t, []string{"-shards", "http://a:1,http://b:2;http://c:3"})); err != nil {
		t.Errorf("good -shards args rejected: %v", err)
	}
}

func TestParseTopology(t *testing.T) {
	got, err := parseTopology("http://a:1, http://b:2 ; http://c:3/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 1 {
		t.Fatalf("topology shape = %v", got)
	}
	if got[1][0] != "http://c:3" {
		t.Fatalf("trailing slash not trimmed: %q", got[1][0])
	}
}

// TestRunLocalMap boots the router over a real partitioned layout and
// queries it end-to-end through HTTP.
func TestRunLocalMap(t *testing.T) {
	mapPath := writeShardLayout(t, testDocs(), 3)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // run re-binds; a race with another process is vanishingly unlikely in CI

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-map", mapPath, "-addr", addr}, log.New(io.Discard, "", 0))
	}()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("run: %v", err)
		}
	}()

	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("router never became ready")
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Get(base + "/search?q=even+third&mode=and")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var sr struct {
		Docs    []uint32 `json:"docs"`
		Matches int      `json:"matches"`
		Partial bool     `json:"partial"`
		Shards  int      `json:"shards"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad /search JSON: %v (%s)", err, body)
	}
	// even+third = multiples of 6 among 0..39: 0,6,12,18,24,30,36.
	if sr.Matches != 7 || sr.Partial || sr.Shards != 3 {
		t.Fatalf("search = %+v, want 7 matches over 3 shards, not partial", sr)
	}
	for i, d := range sr.Docs {
		if d%6 != 0 {
			t.Fatalf("doc %d is not a multiple of 6", d)
		}
		if i > 0 && sr.Docs[i-1] >= d {
			t.Fatal("merged postings not sorted")
		}
	}
}

// TestRunRefusals: startup failures are one-line errors, not serving
// processes.
func TestRunRefusals(t *testing.T) {
	ctx := context.Background()
	logger := log.New(io.Discard, "", 0)
	if err := run(ctx, []string{}, logger); err == nil {
		t.Error("no -map/-shards accepted")
	}
	if err := run(ctx, []string{"-map", filepath.Join(t.TempDir(), "missing.json")}, logger); err == nil {
		t.Error("missing map accepted")
	}
	// A tampered shard file must be refused at startup (verify on).
	mapPath := writeShardLayout(t, testDocs(), 2)
	shardFile := filepath.Join(filepath.Dir(mapPath), shard.FileName(1))
	blob, err := os.ReadFile(shardFile)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(shardFile, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(ctx, []string{"-map", mapPath, "-addr", "127.0.0.1:0"}, logger)
	if err == nil || !strings.Contains(err.Error(), "crc32c") {
		t.Errorf("tampered shard file accepted: %v", err)
	}
}

// TestMainBinaryValidation: the built binary exits non-zero with a
// one-line cause on bad flags (the bvserve convention).
func TestMainBinaryValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary build in -short")
	}
	bin := filepath.Join(t.TempDir(), "bvrouter")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v (%s)", err, out)
	}
	out, err := exec.Command(bin, "-shards", "ftp://nope").CombinedOutput()
	if err == nil {
		t.Fatalf("bad scheme exited zero: %s", out)
	}
	if !strings.Contains(string(out), "http(s)://") {
		t.Fatalf("error does not name the cause: %s", out)
	}
}
