package main

import (
	"strings"
	"testing"
)

const sampleCSV = `experiment,setting,method,op,space_bytes,time_ms
fig3,uniform/1M,Roaring,decompress,2048,0.5
fig3,uniform/1M,WAH,decompress,4096,1.25
fig3,zipf/1M,Roaring,decompress,1024,0.2
`

func TestParseCSV(t *testing.T) {
	rows, err := parseCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].method != "Roaring" || rows[0].spaceBytes != 2048 || rows[0].timeMS != 0.5 {
		t.Errorf("row 0 = %+v", rows[0])
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"a,b,c\n1,2,3\n",
		"experiment,setting,method,op,space_bytes,time_ms\nf,s,m,o,notanumber,1\n",
		"experiment,setting,method,op,space_bytes,time_ms\nf,s,m,o,1,notanumber\n",
	}
	for i, c := range cases {
		if _, err := parseCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGroupRowsPreservesOrder(t *testing.T) {
	rows, _ := parseCSV(strings.NewReader(sampleCSV))
	groups, order := groupRows(rows)
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	if order[0] != "fig3/uniform/1M/decompress" {
		t.Errorf("order[0] = %s", order[0])
	}
	if len(groups[order[0]]) != 2 || len(groups[order[1]]) != 1 {
		t.Error("group sizes wrong")
	}
}

func TestBuildPlotAndSanitize(t *testing.T) {
	rows, _ := parseCSV(strings.NewReader(sampleCSV))
	groups, order := groupRows(rows)
	p := buildPlot(order[0], groups[order[0]], true)
	if len(p.Series) != 1 || len(p.Series[0].Points) != 2 {
		t.Fatalf("plot shape wrong: %+v", p)
	}
	if !p.LogX || !p.LogY {
		t.Error("log axes expected")
	}
	if got := sanitize("fig4/SSB(SF=1)/Q1.1/query"); strings.ContainsAny(got, "/()= ") {
		t.Errorf("sanitize left reserved chars: %q", got)
	}
	if got := sanitize("SIMDBP128*"); strings.Contains(got, "*") {
		t.Errorf("sanitize left asterisk: %q", got)
	}
}
