// Command bvplot turns experiment CSV (bvbench -format csv) into
// paper-style SVG figures: one scatter per (experiment, setting, op),
// compressed space on x, time on y, one labeled point per method —
// the same visual grammar as the paper's Figures 3-12.
//
// Usage:
//
//	go run ./cmd/bvbench -exp fig3 -format csv | go run ./cmd/bvplot -out figs/
//	go run ./cmd/bvplot -in results.csv -out figs/ -linear
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/svgplot"
)

func main() {
	var (
		inFile = flag.String("in", "", "input CSV (default stdin)")
		outDir = flag.String("out", "figs", "output directory for SVG files")
		linear = flag.Bool("linear", false, "linear axes instead of log-log")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		r = f
	}
	rows, err := parseCSV(r)
	if err != nil {
		fatal("%v", err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal("%v", err)
	}
	groups, order := groupRows(rows)
	for _, key := range order {
		plot := buildPlot(key, groups[key], !*linear)
		name := sanitize(key) + ".svg"
		f, err := os.Create(filepath.Join(*outDir, name))
		if err != nil {
			fatal("%v", err)
		}
		if err := plot.Render(f); err != nil {
			fatal("%s: %v", name, err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %s (%d points)\n", filepath.Join(*outDir, name), len(groups[key]))
	}
}

// row is one measurement from the harness CSV.
type row struct {
	experiment, setting, method, op string
	spaceBytes                      float64
	timeMS                          float64
}

// parseCSV reads the bvbench CSV format.
func parseCSV(r io.Reader) ([]row, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("bvplot: no data rows")
	}
	header := records[0]
	want := []string{"experiment", "setting", "method", "op", "space_bytes", "time_ms"}
	for i, h := range want {
		if i >= len(header) || header[i] != h {
			return nil, fmt.Errorf("bvplot: unexpected header %v, want %v", header, want)
		}
	}
	out := make([]row, 0, len(records)-1)
	for i, rec := range records[1:] {
		if len(rec) < 6 {
			return nil, fmt.Errorf("bvplot: row %d has %d fields", i+2, len(rec))
		}
		space, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("bvplot: row %d space: %w", i+2, err)
		}
		ms, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("bvplot: row %d time: %w", i+2, err)
		}
		out = append(out, row{rec[0], rec[1], rec[2], rec[3], space, ms})
	}
	return out, nil
}

// groupRows buckets rows per figure panel, preserving input order.
func groupRows(rows []row) (map[string][]row, []string) {
	groups := map[string][]row{}
	var order []string
	for _, r := range rows {
		key := r.experiment + "/" + r.setting + "/" + r.op
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], r)
	}
	return groups, order
}

// buildPlot makes the scatter for one panel.
func buildPlot(key string, rows []row, logAxes bool) *svgplot.Plot {
	points := make([]svgplot.Point, 0, len(rows))
	for _, r := range rows {
		points = append(points, svgplot.Point{X: r.spaceBytes, Y: r.timeMS, Label: r.method})
	}
	return &svgplot.Plot{
		Title:  key,
		XLabel: "compressed size (bytes)",
		YLabel: "time (ms)",
		LogX:   logAxes,
		LogY:   logAxes,
		Series: []svgplot.Series{{Name: "methods", Points: points}},
	}
}

// sanitize turns a panel key into a file name.
func sanitize(s string) string {
	r := strings.NewReplacer("/", "_", " ", "-", "(", "", ")", "", "=", "", "*", "star", ",", "")
	return r.Replace(s)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bvplot: "+format+"\n", args...)
	os.Exit(1)
}
