// Command bvzip compresses a sorted integer list with any of the 24
// codecs and reports size and round-trip timings; with -compare it runs
// every codec on the same input, producing a one-file version of the
// paper's space comparison.
//
// Input is one unsigned integer per line (strictly increasing) on stdin
// or in the file named by -in. With -gen N the input is synthesized
// instead.
//
// Usage:
//
//	bvzip -codec Roaring -in ids.txt
//	bvzip -compare -gen 100000 -dist zipf
//	seq 1 2 99999 | bvzip -codec SIMDBP128*
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	var (
		codecName = flag.String("codec", "Roaring", "codec name (see -listcodecs)")
		inFile    = flag.String("in", "", "input file (default stdin)")
		compare   = flag.Bool("compare", false, "run all codecs and print a comparison table")
		listC     = flag.Bool("listcodecs", false, "list codec names and exit")
		genN      = flag.Int("gen", 0, "generate N values instead of reading input")
		dist      = flag.String("dist", "uniform", "generator distribution: uniform|zipf|markov")
		domainLog = flag.Int("domain", 24, "generator domain as a power of two")
		seed      = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	if *listC {
		for _, n := range codecs.Names() {
			fmt.Println(n)
		}
		return
	}

	values, err := loadValues(*genN, *dist, *domainLog, *seed, *inFile)
	if err != nil {
		fatal("%v", err)
	}
	if len(values) == 0 {
		fatal("no input values")
	}

	if *compare {
		fmt.Printf("%d values, max %d\n", len(values), values[len(values)-1])
		fmt.Printf("%-16s %6s %14s %12s %14s\n",
			"codec", "kind", "size", "bits/int", "decompress")
		for _, c := range codecs.All() {
			report(c, values)
		}
		return
	}
	c, err := codecs.ByName(*codecName)
	if err != nil {
		fatal("%v (use -listcodecs)", err)
	}
	fmt.Printf("%d values, max %d\n", len(values), values[len(values)-1])
	fmt.Printf("%-16s %6s %14s %12s %14s\n",
		"codec", "kind", "size", "bits/int", "decompress")
	report(c, values)
}

func report(c core.Codec, values []uint32) {
	p, err := c.Compress(values)
	if err != nil {
		fmt.Printf("%-16s %6s %14s\n", c.Name(), c.Kind(), "error: "+err.Error())
		return
	}
	start := time.Now()
	out := p.Decompress()
	el := time.Since(start)
	if len(out) != len(values) {
		fatal("%s: round trip lost values (%d != %d)", c.Name(), len(out), len(values))
	}
	bitsPerInt := float64(p.SizeBytes()) * 8 / float64(len(values))
	fmt.Printf("%-16s %6s %14d %12.2f %14s\n",
		c.Name(), c.Kind(), p.SizeBytes(), bitsPerInt, el)
}

func loadValues(genN int, dist string, domainLog int, seed int64, inFile string) ([]uint32, error) {
	if genN > 0 {
		domain := uint32(1) << uint(domainLog)
		switch dist {
		case "uniform":
			return gen.Uniform(genN, domain, seed), nil
		case "zipf":
			return gen.Zipf(genN, domain, 1.0, seed), nil
		case "markov":
			return gen.MarkovN(genN, domain, 8, seed), nil
		default:
			return nil, fmt.Errorf("unknown distribution %q", dist)
		}
	}
	var r io.Reader = os.Stdin
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var values []uint32
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseUint(line, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", line, err)
		}
		values = append(values, uint32(v))
	}
	return values, sc.Err()
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bvzip: "+format+"\n", args...)
	os.Exit(1)
}
