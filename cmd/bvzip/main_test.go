package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadValuesFromFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "ids.txt")
	if err := os.WriteFile(p, []byte("1\n5\n# comment\n\n10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vals, err := loadValues(0, "", 0, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 5, 10}
	if len(vals) != len(want) {
		t.Fatalf("got %v", vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("got %v want %v", vals, want)
		}
	}
}

func TestLoadValuesRejectsBadLines(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(p, []byte("1\nnot-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadValues(0, "", 0, 0, p); err == nil {
		t.Error("bad line accepted")
	}
	// Values above uint32 range.
	if err := os.WriteFile(p, []byte("4294967296\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadValues(0, "", 0, 0, p); err == nil {
		t.Error("out-of-range value accepted")
	}
}

func TestLoadValuesGenerators(t *testing.T) {
	for _, dist := range []string{"uniform", "zipf", "markov"} {
		vals, err := loadValues(500, dist, 20, 1, "")
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if len(vals) == 0 {
			t.Errorf("%s: empty", dist)
		}
	}
	if _, err := loadValues(10, "gaussian", 20, 1, ""); err == nil {
		t.Error("unknown distribution accepted")
	}
}
