package main

import (
	"testing"
)

func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig(20, "0.01,0.1", 500, 0.5, "1,10", 2, "Roaring,VB")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Domain != 1<<20 || cfg.Ratio != 500 || cfg.RealScale != 0.5 || cfg.Trials != 2 {
		t.Errorf("scalar fields wrong: %+v", cfg)
	}
	if len(cfg.Densities) != 2 || cfg.Densities[0] != 0.01 {
		t.Errorf("densities = %v", cfg.Densities)
	}
	if len(cfg.SFs) != 2 || cfg.SFs[1] != 10 {
		t.Errorf("sfs = %v", cfg.SFs)
	}
	if len(cfg.Codecs) != 2 || cfg.Codecs[0] != "Roaring" {
		t.Errorf("codecs = %v", cfg.Codecs)
	}
}

func TestBuildConfigDefaults(t *testing.T) {
	cfg, err := buildConfig(22, "", 1000, 1.0/64, "1", 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Densities) != 4 {
		t.Errorf("default densities = %v", cfg.Densities)
	}
	if cfg.Codecs != nil {
		t.Errorf("default codecs should be nil, got %v", cfg.Codecs)
	}
}

func TestBuildConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"domain too small", func() error { _, err := buildConfig(5, "", 10, 1, "1", 1, ""); return err }},
		{"domain too big", func() error { _, err := buildConfig(40, "", 10, 1, "1", 1, ""); return err }},
		{"bad density", func() error { _, err := buildConfig(20, "abc", 10, 1, "1", 1, ""); return err }},
		{"density out of range", func() error { _, err := buildConfig(20, "1.5", 10, 1, "1", 1, ""); return err }},
		{"bad sf", func() error { _, err := buildConfig(20, "", 10, 1, "x", 1, ""); return err }},
	}
	for _, c := range cases {
		if c.run() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
