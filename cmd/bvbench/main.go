// Command bvbench regenerates the paper's tables and figures. Each
// experiment prints a table of method x {space, time} rows comparable
// to the corresponding figure or table in the paper.
//
// Usage:
//
//	bvbench -exp fig3                 # one experiment
//	bvbench -exp all -domain 22       # full sweep over a 2^22 domain
//	bvbench -exp tab1 -codecs Roaring,PEF,SIMDBP128*
//	bvbench -list                     # show the experiment registry
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "experiment id (fig3..fig12, tab1..tab3) or 'all'")
		listFlag   = flag.Bool("list", false, "list experiments and exit")
		domainLog  = flag.Int("domain", 22, "synthetic domain size as a power of two")
		densities  = flag.String("densities", "", "comma-separated list densities (default: paper's 1M/10M/100M/1B analogues)")
		ratio      = flag.Int("ratio", 1000, "|L2|/|L1| for the pair sweeps")
		realScale  = flag.Float64("scale", 1.0/64, "scale factor for the real-dataset workloads")
		sfs        = flag.String("sf", "1", "comma-separated SSB/TPCH scale factors")
		trials     = flag.Int("trials", 3, "timing repetitions (best is reported)")
		codecsFlag = flag.String("codecs", "", "comma-separated codec names (default: all 24)")
		engine     = flag.Bool("engine", false, "evaluate query plans on the pooled parallel ops.Engine instead of the serial reference")
		summary    = flag.Bool("summary", false, "print per-setting winners after each table")
		format     = flag.String("format", "table", "output format: table | csv")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range bench.Registry() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg, err := buildConfig(*domainLog, *densities, *ratio, *realScale, *sfs, *trials, *codecsFlag)
	if err != nil {
		fatal("%v", err)
	}
	cfg.UseEngine = *engine

	var exps []bench.Experiment
	if *expFlag == "all" {
		exps = bench.Registry()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal("%v (use -list to see experiments)", err)
			}
			exps = append(exps, e)
		}
	}

	for _, e := range exps {
		ms, err := e.Run(cfg)
		if err != nil {
			fatal("%s: %v", e.ID, err)
		}
		switch *format {
		case "csv":
			bench.PrintCSV(os.Stdout, ms)
		case "table":
			bench.PrintTable(os.Stdout, fmt.Sprintf("[%s] %s", e.ID, e.Title), ms)
		default:
			fatal("unknown format %q (table | csv)", *format)
		}
		if *summary {
			fmt.Println(bench.Summary(ms))
		}
	}
}

// buildConfig assembles the experiment configuration from flag values.
func buildConfig(domainLog int, densities string, ratio int, realScale float64,
	sfs string, trials int, codecsFlag string) (bench.Config, error) {
	cfg := bench.Default()
	if domainLog < 10 || domainLog > 30 {
		return cfg, fmt.Errorf("domain 2^%d out of range [2^10, 2^30]", domainLog)
	}
	cfg.Domain = 1 << uint(domainLog)
	cfg.Ratio = ratio
	cfg.RealScale = realScale
	cfg.Trials = trials
	if densities != "" {
		cfg.Densities = nil
		for _, s := range strings.Split(densities, ",") {
			d, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return cfg, fmt.Errorf("bad density %q: %v", s, err)
			}
			if d <= 0 || d > 1 {
				return cfg, fmt.Errorf("density %v out of range (0, 1]", d)
			}
			cfg.Densities = append(cfg.Densities, d)
		}
	}
	cfg.SFs = nil
	for _, s := range strings.Split(sfs, ",") {
		sf, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return cfg, fmt.Errorf("bad scale factor %q: %v", s, err)
		}
		cfg.SFs = append(cfg.SFs, sf)
	}
	if codecsFlag != "" {
		for _, c := range strings.Split(codecsFlag, ",") {
			cfg.Codecs = append(cfg.Codecs, strings.TrimSpace(c))
		}
	}
	return cfg, nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bvbench: "+format+"\n", args...)
	os.Exit(1)
}
