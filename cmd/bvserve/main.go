// Command bvserve exposes a compressed inverted index over HTTP — the
// smallest realistic deployment of the §A.1 search stack: build or load
// an index, then answer conjunctive/disjunctive/top-k queries as JSON.
//
// Usage:
//
//	bvserve -in docs.txt -addr :8080 -codec Roaring
//	bvserve -index docs.idx -addr :8080
//
//	GET /search?q=compressed+lists&mode=and
//	GET /search?q=bitmap&mode=topk&k=3
//	GET /stats
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/codecs"
	"repro/internal/index"
)

func main() {
	var (
		inFile    = flag.String("in", "", "documents to index, one per line")
		indexFile = flag.String("index", "", "pre-built index file (bvindex -build)")
		codecName = flag.String("codec", "Roaring", "codec for posting lists (with -in)")
		addr      = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	idx, err := loadIndex(*inFile, *indexFile, *codecName)
	if err != nil {
		log.Fatalf("bvserve: %v", err)
	}
	log.Printf("serving %d documents, %d terms, %d compressed bytes on %s",
		idx.Docs(), idx.Terms(), idx.SizeBytes(), *addr)
	log.Fatal(http.ListenAndServe(*addr, newServer(idx)))
}

// loadIndex builds from raw documents or loads a serialized index.
func loadIndex(inFile, indexFile, codecName string) (*index.Index, error) {
	switch {
	case indexFile != "":
		f, err := os.Open(indexFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return index.Read(f)
	case inFile != "":
		codec, err := codecs.ByName(codecName)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		b := index.NewBuilder(codec)
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if line := strings.TrimSpace(sc.Text()); line != "" {
				b.AddDocument(line)
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return b.Build()
	default:
		return nil, fmt.Errorf("pass -in (documents) or -index (prebuilt index)")
	}
}

// newServer wires the HTTP routes around an index.
func newServer(idx *index.Index) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		handleSearch(idx, w, r)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]int{
			"documents":       idx.Docs(),
			"terms":           idx.Terms(),
			"compressedBytes": idx.SizeBytes(),
		})
	})
	return mux
}

// searchResponse is the /search JSON shape.
type searchResponse struct {
	Query   []string       `json:"query"`
	Mode    string         `json:"mode"`
	Docs    []uint32       `json:"docs,omitempty"`
	Ranked  []index.Result `json:"ranked,omitempty"`
	Matches int            `json:"matches"`
}

func handleSearch(idx *index.Index, w http.ResponseWriter, r *http.Request) {
	terms := index.Tokenize(r.URL.Query().Get("q"))
	if len(terms) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing or empty q parameter"})
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "and"
	}
	resp := searchResponse{Query: terms, Mode: mode}
	switch mode {
	case "and":
		docs, err := idx.Conjunctive(terms...)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		resp.Docs, resp.Matches = docs, len(docs)
	case "or":
		docs, err := idx.Disjunctive(terms...)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		resp.Docs, resp.Matches = docs, len(docs)
	case "topk":
		k := 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			var err error
			if k, err = strconv.Atoi(ks); err != nil || k < 1 {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad k parameter"})
				return
			}
		}
		ranked, err := idx.TopK(k, terms...)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		resp.Ranked, resp.Matches = ranked, len(ranked)
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "mode must be and | or | topk"})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("bvserve: encoding response: %v", err)
	}
}
