// Command bvserve exposes a compressed inverted index over HTTP — the
// smallest realistic deployment of the §A.1 search stack: build or load
// an index, then answer conjunctive/disjunctive/top-k queries as JSON
// from behind a hardened serving layer (timeouts, load shedding, panic
// recovery, graceful shutdown, hot index reload).
//
// Usage:
//
//	bvserve -in docs.txt -addr :8080 -codec Roaring
//	bvserve -index docs.idx -addr :8080
//	bvserve -live data/live -addr :8080
//
//	GET  /search?q=compressed+lists&mode=and
//	GET  /search?q=bitmap&mode=topk&k=3
//	GET  /stats
//	GET  /healthz        liveness probe
//	GET  /readyz         readiness probe (503 while starting or draining)
//	POST /reload         hot-swap the index from the original source
//
// With -live DIR the server fronts the WAL-backed mutable index in DIR
// instead of a static file: POST /ingest {"text": ...} and POST
// /delete {"doc": N} become available (acked only after the WAL
// fsync, so acked writes survive kill -9), /reload force-seals the
// mutable segment, and /stats reports per-segment depth and WAL
// gauges. -seal-docs, -fsync-window, -compact-segments, and
// -ingest-queue tune it.
//
// SIGHUP also triggers a hot reload (a seal in live mode);
// SIGINT/SIGTERM drain gracefully.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], log.Default()); err != nil {
		log.Fatalf("bvserve: %v", err)
	}
}

// run is the whole program behind flag parsing and signal wiring,
// returning errors (instead of log.Fatal-ing mid-stack) so shutdown is
// testable and deferred cleanup actually runs.
func run(ctx context.Context, args []string, logger *log.Logger) error {
	fs := flag.NewFlagSet("bvserve", flag.ContinueOnError)
	var (
		inFile    = fs.String("in", "", "documents to index, one per line")
		indexFile = fs.String("index", "", "pre-built index file (bvindex -build)")
		codecName = fs.String("codec", "Roaring", "codec for posting lists (with -in)")
		shards    = fs.Int("shards", 0, "tokenizer shards for parallel builds with -in (0 = GOMAXPROCS)")
		addr      = fs.String("addr", ":8080", "listen address")

		liveDir     = fs.String("live", "", "live-ingestion mode: WAL-backed mutable index directory (POST /ingest, /delete)")
		sealDocs    = fs.Int("seal-docs", 50000, "live mode: auto-seal the mutable segment at this many documents (0 disables)")
		fsyncWindow = fs.Duration("fsync-window", 0, "live mode: WAL group-commit window; 0 fsyncs every append")
		compactSegs = fs.Int("compact-segments", 4, "live mode: compact when this many sealed segments accumulate (0 disables)")
		ingestQueue = fs.Int("ingest-queue", 128, "live mode: admitted write requests before shedding with 429")

		readTimeout  = fs.Duration("read-timeout", 5*time.Second, "max time to read a request")
		writeTimeout = fs.Duration("write-timeout", 10*time.Second, "max time to write a response")
		idleTimeout  = fs.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
		reqTimeout   = fs.Duration("request-timeout", 5*time.Second, "per-request handler budget")
		drain        = fs.Duration("drain", 10*time.Second, "graceful shutdown deadline for in-flight requests")

		maxInFlight = fs.Int("max-inflight", 64, "concurrent requests before shedding with 429")
		cacheMB     = fs.Int("cache-mb", 32, "decoded-posting cache budget in MiB (0 disables)")
		maxTerms    = fs.Int("max-terms", 16, "max query terms before 400")
		maxK        = fs.Int("max-k", 1000, "max top-k before 400")
		maxURL      = fs.Int("max-url", 8192, "max request-URI bytes before 414")

		maxDocs = fs.Int("max-docs", 1<<22, "max documents to ingest from -in")
		maxLine = fs.Int("max-line", 1<<20, "max bytes per -in document line")

		loadRetries   = fs.Int("load-retries", 5, "attempts for the initial index load when failures are transient")
		allowDegraded = fs.Bool("allow-degraded", true, "serve a checksum-failed index in degraded mode (quarantined terms withheld) instead of exiting")
	)
	fs.SetOutput(logger.Writer())
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFlags(fs); err != nil {
		return err
	}

	if *liveDir != "" {
		return runLive(ctx, logger, *liveDir, *addr, server.Config{
			ReadTimeout:    *readTimeout,
			WriteTimeout:   *writeTimeout,
			IdleTimeout:    *idleTimeout,
			RequestTimeout: *reqTimeout,
			DrainDeadline:  *drain,
			MaxInFlight:    *maxInFlight,
			MaxQueryTerms:  *maxTerms,
			MaxK:           *maxK,
			MaxURLBytes:    *maxURL,
			IngestQueue:    *ingestQueue,
			CacheBytes:     -1, // live postings are re-cut by seals; no decoded cache
			Logger:         logger,
		}, index.LiveOptions{
			SyncEvery:       *fsyncWindow,
			SealDocs:        *sealDocs,
			CompactSegments: *compactSegs,
		})
	}

	load := func() (*index.Index, error) {
		idx, err := loadIndex(*inFile, *indexFile, *codecName, *shards, *maxDocs, *maxLine, *allowDegraded)
		if err != nil {
			return nil, err
		}
		if h := idx.Health(); h.Degraded {
			logger.Printf("bvserve: WARNING: serving DEGRADED index: sections %v failed checksums, %d terms quarantined; rebuild the index (see the corruption-recovery runbook)",
				h.QuarantinedSections, h.QuarantinedTerms)
		}
		return idx, nil
	}
	idx, err := loadWithRetry(ctx, logger, *loadRetries, load)
	if err != nil {
		return err
	}
	logger.Printf("serving %d documents, %d terms, %d compressed bytes on %s",
		idx.Docs(), idx.Terms(), idx.SizeBytes(), *addr)

	srv := server.New(idx, server.Config{
		ReadTimeout:    *readTimeout,
		WriteTimeout:   *writeTimeout,
		IdleTimeout:    *idleTimeout,
		RequestTimeout: *reqTimeout,
		DrainDeadline:  *drain,
		MaxInFlight:    *maxInFlight,
		MaxQueryTerms:  *maxTerms,
		MaxK:           *maxK,
		MaxURLBytes:    *maxURL,
		CacheBytes:     cacheBytes(*cacheMB),
		Logger:         logger,
	})
	srv.SetLoader(load)

	// SIGHUP hot-reloads the index from its original source (-in or
	// -index) without dropping in-flight requests; POST /reload is the
	// same path for environments where signals are awkward.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				if err := srv.Reload(); err != nil {
					logger.Printf("bvserve: SIGHUP reload: %v", err)
				}
			}
		}
	}()

	return srv.Run(ctx, *addr)
}

// runLive opens (or creates) the WAL-backed live index directory,
// replays whatever a previous process left behind — acked writes
// survive kill -9 — and serves it with ingestion enabled. SIGHUP
// force-seals the mutable segment, mirroring static mode's hot reload.
func runLive(ctx context.Context, logger *log.Logger, dir, addr string, cfg server.Config, opts index.LiveOptions) error {
	l, err := index.OpenLive(dir, opts)
	if err != nil {
		return fmt.Errorf("opening live index %s: %w", dir, err)
	}
	defer l.Close()
	st := l.Stats()
	logger.Printf("live index %s: %d documents across %d sealed segments (+%d mutable), %d tombstones, WAL seq %d",
		dir, st.VisibleDocs, st.Segments, st.MemDocs, st.Tombstones, st.WALSeq)
	if h := l.Health(); h.Degraded {
		logger.Printf("bvserve: WARNING: serving DEGRADED live index: sealed segments %v quarantined, mutable segment live; see the live-ingestion runbook",
			h.QuarantinedSegments)
	}

	srv := server.NewLive(l, cfg)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				if err := l.Seal(); err != nil {
					logger.Printf("bvserve: SIGHUP seal: %v", err)
				}
			}
		}
	}()
	return srv.Run(ctx, addr)
}

// validateFlags rejects nonsensical configurations right after parse,
// before any index is loaded or socket bound, with a one-line cause.
// (-cache-mb is exempt: zero and negative mean "cache disabled".)
func validateFlags(fs *flag.FlagSet) error {
	get := func(name string) any { return fs.Lookup(name).Value.(flag.Getter).Get() }
	for _, name := range []string{"read-timeout", "write-timeout", "idle-timeout", "request-timeout", "drain"} {
		if d := get(name).(time.Duration); d <= 0 {
			return fmt.Errorf("-%s=%s: timeout must be positive", name, d)
		}
	}
	for _, name := range []string{"max-inflight", "max-terms", "max-k", "max-url", "max-docs", "max-line"} {
		if v := get(name).(int); v <= 0 {
			return fmt.Errorf("-%s=%d: limit must be positive", name, v)
		}
	}
	if v := get("load-retries").(int); v < 1 {
		return fmt.Errorf("-load-retries=%d: need at least one load attempt", v)
	}
	if v := get("shards").(int); v < 0 || v > 4096 {
		return fmt.Errorf("-shards=%d: want 0 (one per CPU) through 4096", v)
	}
	if get("addr").(string) == "" {
		return fmt.Errorf("-addr: listen address must not be empty")
	}
	if get("live").(string) != "" {
		if get("in").(string) != "" || get("index").(string) != "" {
			return fmt.Errorf("-live: mutually exclusive with -in and -index")
		}
		if v := get("seal-docs").(int); v < 0 {
			return fmt.Errorf("-seal-docs=%d: want 0 (disabled) or a positive document count", v)
		}
		if v := get("compact-segments").(int); v < 0 {
			return fmt.Errorf("-compact-segments=%d: want 0 (disabled) or a positive segment count", v)
		}
		if d := get("fsync-window").(time.Duration); d < 0 {
			return fmt.Errorf("-fsync-window=%s: want 0 (fsync every append) or a positive window", d)
		}
		if v := get("ingest-queue").(int); v <= 0 {
			return fmt.Errorf("-ingest-queue=%d: admission depth must be positive", v)
		}
	}
	return nil
}

// cacheBytes maps the -cache-mb flag onto Config.CacheBytes, where 0
// means "default" and negative means "disabled".
func cacheBytes(mb int) int {
	if mb <= 0 {
		return -1
	}
	return mb << 20
}

// loadWithRetry runs load, retrying transient failures (as classified
// by core.IsTransient: resource exhaustion, timeouts) with capped
// exponential backoff. Permanent failures — corrupt files, unknown
// versions, missing paths — fail immediately; retrying cannot fix
// them. Respects ctx so shutdown interrupts a backoff sleep.
func loadWithRetry(ctx context.Context, logger *log.Logger, attempts int, load func() (*index.Index, error)) (*index.Index, error) {
	const maxDelay = 5 * time.Second
	delay := 100 * time.Millisecond
	for attempt := 1; ; attempt++ {
		idx, err := load()
		if err == nil {
			return idx, nil
		}
		if attempt >= attempts || !core.IsTransient(err) {
			return nil, err
		}
		logger.Printf("bvserve: load attempt %d/%d failed (transient): %v; retrying in %s",
			attempt, attempts, err, delay)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

// loadIndex builds from raw documents or loads a serialized index. The
// ingest path is bounded: more than maxDocs lines or a line longer than
// maxLineBytes is a clear error naming the offending line, not a silent
// truncation or an unbounded build.
//
// The -index path goes through index.OpenFile, which maps BVIX3 files
// zero-copy and materializes postings lazily. Superseded snapshots from
// hot reloads are retired by the serving layer and Closed once their
// in-flight queries drain. When the file fails its checksums and
// allowDegraded is set, the open falls back to degraded mode: verified
// content serves, the rest is quarantined, and /healthz reports the
// damage.
func loadIndex(inFile, indexFile, codecName string, shards, maxDocs, maxLineBytes int, allowDegraded bool) (*index.Index, error) {
	switch {
	case indexFile != "":
		idx, err := index.OpenFile(indexFile)
		if err != nil && allowDegraded && errors.Is(err, core.ErrChecksum) {
			deg, derr := index.OpenFileDegraded(indexFile)
			if derr != nil {
				return nil, err // salvage failed too; the strict error names the damage
			}
			return deg, nil
		}
		return idx, err
	case inFile != "":
		codec, err := codecs.ByName(codecName)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		b := index.NewBuilder(codec)
		b.SetShards(shards)
		sc := bufio.NewScanner(f)
		// The scanner's cap is max(bufCap, maxLineBytes), so the initial
		// buffer must not exceed the configured line limit.
		sc.Buffer(make([]byte, min(64*1024, maxLineBytes)), maxLineBytes)
		line, added := 0, 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			if added >= maxDocs {
				return nil, fmt.Errorf("%s: more than %d documents (at line %d); raise -max-docs", inFile, maxDocs, line)
			}
			b.AddDocument(text)
			added++
		}
		if err := sc.Err(); err != nil {
			if errors.Is(err, bufio.ErrTooLong) {
				return nil, fmt.Errorf("%s: line %d exceeds -max-line=%d bytes: %w", inFile, line+1, maxLineBytes, err)
			}
			return nil, fmt.Errorf("%s: %w", inFile, err)
		}
		return b.Build()
	default:
		return nil, fmt.Errorf("pass -in (documents) or -index (prebuilt index)")
	}
}
