package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/index"
)

const (
	defaultMaxDocs = 1 << 22
	defaultMaxLine = 1 << 20
)

func TestLoadIndexPaths(t *testing.T) {
	dir := t.TempDir()
	docs := filepath.Join(dir, "docs.txt")
	if err := os.WriteFile(docs, []byte("alpha beta\ngamma\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	idx, err := loadIndex(docs, "", "VB", 0, defaultMaxDocs, defaultMaxLine, true)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Docs() != 2 {
		t.Fatalf("docs = %d", idx.Docs())
	}
	// Round trip through a serialized index file.
	idxFile := filepath.Join(dir, "docs.idx")
	f, err := os.Create(idxFile)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	loaded, err := loadIndex("", idxFile, "", 0, defaultMaxDocs, defaultMaxLine, true)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Docs() != 2 {
		t.Fatalf("loaded docs = %d", loaded.Docs())
	}
	// Neither input: error.
	if _, err := loadIndex("", "", "Roaring", 0, defaultMaxDocs, defaultMaxLine, true); err == nil {
		t.Error("expected error with no inputs")
	}
	if _, err := loadIndex(docs, "", "NoSuchCodec", 0, defaultMaxDocs, defaultMaxLine, true); err == nil {
		t.Error("expected error for unknown codec")
	}
}

func TestLoadIndexBounds(t *testing.T) {
	dir := t.TempDir()

	// Document count over the cap: clear error naming the limit.
	many := filepath.Join(dir, "many.txt")
	if err := os.WriteFile(many, []byte("one\ntwo\nthree\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := loadIndex(many, "", "Roaring", 0, 2, defaultMaxLine, true)
	if err == nil || !strings.Contains(err.Error(), "max-docs") {
		t.Fatalf("over max-docs: err = %v, want message naming -max-docs", err)
	}

	// A line longer than the scanner budget: a clear error naming the
	// line and the limit, not a silent truncation.
	long := filepath.Join(dir, "long.txt")
	if err := os.WriteFile(long, []byte("short line\n"+strings.Repeat("x", 300)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = loadIndex(long, "", "Roaring", 0, defaultMaxDocs, 128, true)
	if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "max-line") {
		t.Fatalf("over max-line: err = %v, want message naming line 2 and -max-line", err)
	}

	// Blank lines don't count against the document cap.
	blanks := filepath.Join(dir, "blanks.txt")
	if err := os.WriteFile(blanks, []byte("\n\nalpha\n\nbeta\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	idx, err := loadIndex(blanks, "", "Roaring", 0, 2, defaultMaxLine, true)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Docs() != 2 {
		t.Fatalf("docs = %d, want 2", idx.Docs())
	}
}

// syncBuffer lets the server goroutine log while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func waitFor(t *testing.T, buf *syncBuffer, substr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), substr) {
		if time.Now().After(deadline) {
			t.Fatalf("log never contained %q; log:\n%s", substr, buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunLifecycle drives run() the way main does: start on an
// ephemeral port, hot-reload via SIGHUP, then cancel the context and
// expect a clean (nil) return from the graceful drain.
func TestRunLifecycle(t *testing.T) {
	dir := t.TempDir()
	docs := filepath.Join(dir, "docs.txt")
	if err := os.WriteFile(docs, []byte("compressed bitmaps\ninverted lists\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	buf := &syncBuffer{}
	logger := log.New(buf, "", 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-in", docs, "-addr", "127.0.0.1:0", "-drain", "2s"}, logger)
	}()
	// The SIGHUP handler is installed before the listener comes up, so
	// once "listening" is logged the signal is safe to send.
	waitFor(t, buf, "listening on")

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitFor(t, buf, "hot-reloaded index")

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run = %v, want nil after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after context cancel")
	}
	if !strings.Contains(buf.String(), "shutdown complete") {
		t.Fatalf("no clean shutdown logged; log:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	logger := log.New(&syncBuffer{}, "", 0)
	ctx := context.Background()
	if err := run(ctx, []string{"-no-such-flag"}, logger); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(ctx, nil, logger); err == nil {
		t.Error("run with no index source succeeded")
	}
	if err := run(ctx, []string{"-in", "/does/not/exist.txt"}, logger); err == nil {
		t.Error("missing input file accepted")
	}
}

// TestValidateFlags: nonsensical configurations exit non-zero at parse
// time with a one-line cause naming the flag, before any index loads
// or socket binds.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		args []string
		want string // flag the error must name
	}{
		{[]string{"-load-retries", "-3"}, "-load-retries"},
		{[]string{"-load-retries", "0"}, "-load-retries"},
		{[]string{"-read-timeout", "0"}, "-read-timeout"},
		{[]string{"-write-timeout", "-1s"}, "-write-timeout"},
		{[]string{"-idle-timeout", "0"}, "-idle-timeout"},
		{[]string{"-request-timeout", "-5ms"}, "-request-timeout"},
		{[]string{"-drain", "0"}, "-drain"},
		{[]string{"-shards", "-1"}, "-shards"},
		{[]string{"-shards", "5000"}, "-shards"},
		{[]string{"-max-inflight", "0"}, "-max-inflight"},
		{[]string{"-max-terms", "-2"}, "-max-terms"},
		{[]string{"-max-k", "0"}, "-max-k"},
		{[]string{"-max-url", "0"}, "-max-url"},
		{[]string{"-max-docs", "0"}, "-max-docs"},
		{[]string{"-max-line", "-10"}, "-max-line"},
		{[]string{"-addr", ""}, "-addr"},
	}
	for _, c := range cases {
		// -in is syntactically valid here; validation must fail first.
		args := append([]string{"-in", "unused.txt"}, c.args...)
		err := run(context.Background(), args, log.New(&syncBuffer{}, "", 0))
		if err == nil {
			t.Errorf("args %v accepted", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("args %v: error %q does not name %s", c.args, err, c.want)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("args %v: cause is not one line: %q", c.args, err)
		}
	}
}

// TestValidateLiveFlags: the live-ingestion flags get the same
// parse-time validation with one-line causes.
func TestValidateLiveFlags(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-live", "d", "-in", "x.txt"}, "-live"},
		{[]string{"-live", "d", "-index", "x.idx"}, "-live"},
		{[]string{"-live", "d", "-seal-docs", "-1"}, "-seal-docs"},
		{[]string{"-live", "d", "-compact-segments", "-2"}, "-compact-segments"},
		{[]string{"-live", "d", "-fsync-window", "-1ms"}, "-fsync-window"},
		{[]string{"-live", "d", "-ingest-queue", "0"}, "-ingest-queue"},
	}
	for _, c := range cases {
		err := run(context.Background(), c.args, log.New(&syncBuffer{}, "", 0))
		if err == nil {
			t.Errorf("args %v accepted", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("args %v: error %q does not name %s", c.args, err, c.want)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("args %v: cause is not one line: %q", c.args, err)
		}
	}
}

// TestRunLiveLifecycle boots live mode on a fresh directory, waits for
// the listener, force-seals via SIGHUP, and shuts down cleanly.
func TestRunLiveLifecycle(t *testing.T) {
	buf := &syncBuffer{}
	logger := log.New(buf, "", 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-live", filepath.Join(t.TempDir(), "live"), "-addr", "127.0.0.1:0", "-drain", "2s"}, logger)
	}()
	waitFor(t, buf, "listening on")
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run = %v, want nil after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after context cancel")
	}
	if !strings.Contains(buf.String(), "live index") {
		t.Fatalf("live boot not logged; log:\n%s", buf.String())
	}
}

// TestLoadWithRetryTransient: transient failures back off and retry;
// the call succeeds once the underlying condition clears.
func TestLoadWithRetryTransient(t *testing.T) {
	buf := &syncBuffer{}
	logger := log.New(buf, "", 0)
	attempts := 0
	idx, err := loadWithRetry(context.Background(), logger, 5, func() (*index.Index, error) {
		attempts++
		if attempts < 3 {
			return nil, core.Transient(errors.New("index store warming up"))
		}
		return buildSmallIndex(t), nil
	})
	if err != nil {
		t.Fatalf("loadWithRetry = %v", err)
	}
	if idx == nil || attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if !strings.Contains(buf.String(), "retrying in") {
		t.Fatalf("no backoff logged:\n%s", buf.String())
	}
}

// TestLoadWithRetryPermanent: a permanent failure (corrupt index) must
// not be retried — it exits immediately with the cause.
func TestLoadWithRetryPermanent(t *testing.T) {
	attempts := 0
	_, err := loadWithRetry(context.Background(), log.New(&syncBuffer{}, "", 0), 5, func() (*index.Index, error) {
		attempts++
		return nil, fmt.Errorf("open: %w", core.ErrChecksum)
	})
	if err == nil || attempts != 1 {
		t.Fatalf("permanent failure: err=%v attempts=%d, want 1 attempt", err, attempts)
	}
}

// TestLoadWithRetryContextCancel: shutdown interrupts the backoff
// sleep instead of waiting it out.
func TestLoadWithRetryContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	start := time.Now()
	_, err := loadWithRetry(ctx, log.New(&syncBuffer{}, "", 0), 100, func() (*index.Index, error) {
		return nil, core.Transient(errors.New("never ready"))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("cancel did not interrupt the backoff")
	}
}

func buildSmallIndex(t *testing.T) *index.Index {
	t.Helper()
	idx, err := loadIndexFromDocs(t, "alpha beta\ngamma alpha\n")
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func loadIndexFromDocs(t *testing.T, content string) (*index.Index, error) {
	t.Helper()
	p := filepath.Join(t.TempDir(), "docs.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return loadIndex(p, "", "Roaring", 0, defaultMaxDocs, defaultMaxLine, true)
}

// TestLoadIndexDegradedFallback: with -allow-degraded a checksum-failed
// BVIX3 file serves in degraded mode; without it the corruption is
// fatal. Damage beyond salvage (a corrupt header) is fatal either way.
func TestLoadIndexDegradedFallback(t *testing.T) {
	idx := buildSmallIndex(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "x.bvix3")
	if err := idx.WriteFile(path, index.FormatBVIX3); err != nil {
		t.Fatal(err)
	}
	file, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	file[len(file)-1] ^= 0x01 // last payload byte: a section CRC now fails
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := loadIndex("", path, "", 0, defaultMaxDocs, defaultMaxLine, false); err == nil {
		t.Fatal("corrupt index accepted without -allow-degraded")
	}
	deg, err := loadIndex("", path, "", 0, defaultMaxDocs, defaultMaxLine, true)
	if err != nil {
		t.Fatalf("degraded fallback failed: %v", err)
	}
	if !deg.Health().Degraded {
		t.Fatal("fallback index does not report degraded")
	}

	file[8] ^= 0x01 // header byte: salvage impossible
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadIndex("", path, "", 0, defaultMaxDocs, defaultMaxLine, true); err == nil {
		t.Fatal("unsalvageable index accepted")
	}
}
