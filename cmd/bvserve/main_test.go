package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codecs"
	"repro/internal/index"
)

func testIndex(t *testing.T) *index.Index {
	t.Helper()
	codec, err := codecs.ByName("Roaring")
	if err != nil {
		t.Fatal(err)
	}
	b := index.NewBuilder(codec)
	for _, d := range []string{
		"compressed bitmap indexes",
		"compressed inverted lists",
		"bitmap and inverted list compression compression",
	} {
		b.AddDocument(d)
	}
	idx, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]interface{}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("%s: bad JSON: %v", path, err)
	}
	return rec, body
}

func TestSearchAnd(t *testing.T) {
	h := newServer(testIndex(t))
	rec, body := get(t, h, "/search?q=compressed+bitmap&mode=and")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	docs := body["docs"].([]interface{})
	if len(docs) != 1 || docs[0].(float64) != 0 {
		t.Fatalf("docs = %v", docs)
	}
}

func TestSearchOrAndDefaults(t *testing.T) {
	h := newServer(testIndex(t))
	_, body := get(t, h, "/search?q=lists+indexes&mode=or")
	if body["matches"].(float64) != 2 {
		t.Fatalf("matches = %v", body["matches"])
	}
	// Default mode is AND.
	_, body = get(t, h, "/search?q=compressed")
	if body["mode"] != "and" || body["matches"].(float64) != 2 {
		t.Fatalf("default mode body = %v", body)
	}
}

func TestSearchTopK(t *testing.T) {
	h := newServer(testIndex(t))
	rec, body := get(t, h, "/search?q=compression&mode=topk&k=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	ranked := body["ranked"].([]interface{})
	if len(ranked) != 1 {
		t.Fatalf("ranked = %v", ranked)
	}
	top := ranked[0].(map[string]interface{})
	if top["Doc"].(float64) != 2 || top["Score"].(float64) != 2 {
		t.Fatalf("top = %v", top)
	}
}

func TestSearchErrors(t *testing.T) {
	h := newServer(testIndex(t))
	for _, path := range []string{
		"/search",                      // missing q
		"/search?q=x&mode=banana",      // bad mode
		"/search?q=x&mode=topk&k=zero", // bad k
		"/search?q=...&mode=and",       // tokenizes to nothing
	} {
		rec, _ := get(t, h, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}

func TestStats(t *testing.T) {
	h := newServer(testIndex(t))
	rec, body := get(t, h, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if body["documents"].(float64) != 3 || body["terms"].(float64) == 0 {
		t.Fatalf("stats = %v", body)
	}
}

func TestLoadIndexPaths(t *testing.T) {
	dir := t.TempDir()
	docs := filepath.Join(dir, "docs.txt")
	if err := os.WriteFile(docs, []byte("alpha beta\ngamma\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	idx, err := loadIndex(docs, "", "VB")
	if err != nil {
		t.Fatal(err)
	}
	if idx.Docs() != 2 {
		t.Fatalf("docs = %d", idx.Docs())
	}
	// Round trip through a serialized index file.
	idxFile := filepath.Join(dir, "docs.idx")
	f, err := os.Create(idxFile)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	loaded, err := loadIndex("", idxFile, "")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Docs() != 2 {
		t.Fatalf("loaded docs = %d", loaded.Docs())
	}
	// Neither input: error.
	if _, err := loadIndex("", "", "Roaring"); err == nil {
		t.Error("expected error with no inputs")
	}
	if _, err := loadIndex(docs, "", "NoSuchCodec"); err == nil {
		t.Error("expected error for unknown codec")
	}
	if !strings.Contains(idxFile, dir) {
		t.Fatal("sanity")
	}
}
