package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGeneratedFilesInSync regenerates every kernel file in memory and
// compares it byte-for-byte against the committed copy under
// internal/kernels. A mismatch means someone edited the generator (or a
// generated file by hand) without rerunning go generate; CI enforces the
// same invariant via `go generate ./... && git diff --exit-code`.
func TestGeneratedFilesInSync(t *testing.T) {
	files, err := Files()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(files) == 0 {
		t.Fatal("generator produced no files")
	}
	dir := filepath.Join("..", "..", "internal", "kernels")
	for name, want := range files {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v (run `go generate ./internal/kernels`)", name, err)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("%s: committed file differs from generator output (run `go generate ./internal/kernels`)", name)
		}
	}
}
