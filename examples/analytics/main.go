// Analytics: bitmap-indexed star-schema queries (§A.2) on the table
// substrate. A synthetic fact table gets one compressed posting per
// distinct column value; conjunctive predicates become bitmap ANDs and
// range predicates become ORs — the exact mapping the paper's database
// side motivates — compared across three codecs on the same workload.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/codecs"
	"repro/internal/table"
)

func main() {
	const rows = 500_000
	rng := rand.New(rand.NewSource(7))
	region := make([]uint32, rows)
	age := make([]uint32, rows)
	for i := 0; i < rows; i++ {
		region[i] = uint32(rng.Intn(6))
		age[i] = uint32(18 + rng.Intn(73))
	}
	tbl := table.New()
	if err := tbl.AddColumn("region", region); err != nil {
		log.Fatal(err)
	}
	if err := tbl.AddColumn("age", age); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fact table: %d rows, 6 regions, 73 ages\n\n", rows)
	fmt.Printf("%-12s %12s %18s %18s\n", "codec", "index size", "AND (rows, ms)", "RANGE (rows, ms)")

	for _, name := range []string{"Roaring", "WAH", "SIMDBP128*"} {
		codec, err := codecs.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		ix, err := table.BuildIndex(tbl, codec, "region", "age")
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		and, err := ix.Select(table.Eq("region", 2), table.Eq("age", 30))
		if err != nil {
			log.Fatal(err)
		}
		andMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		rangeRows, err := ix.Select(table.Range("age", 25, 26))
		if err != nil {
			log.Fatal(err)
		}
		rangeMS := float64(time.Since(start).Microseconds()) / 1000

		fmt.Printf("%-12s %12d %11d %6.2f %11d %6.2f\n",
			name, ix.SizeBytes(), len(and), andMS, len(rangeRows), rangeMS)
	}

	fmt.Println("\nper the paper's guidance: Roaring for the AND-heavy star join,")
	fmt.Println("SIMDBP128* for the union-backed range query (§7.1).")
}
