// Quickstart: compress a sorted ID list with a bitmap codec and a list
// codec, compare their footprints, and run the two operations the study
// measures — intersection and union — through the unified ops API.
package main

import (
	"fmt"
	"log"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ops"
)

func main() {
	// Two overlapping sorted sets: "customers who bought an iPhone" and
	// "customers from California", as in the paper's motivating example.
	iphone := gen.Uniform(50_000, 1<<20, 1)
	california := gen.Uniform(200_000, 1<<20, 2)

	for _, name := range []string{"Roaring", "WAH", "SIMDBP128*", "VB"} {
		codec, err := codecs.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		a := mustCompress(codec, iphone)
		b := mustCompress(codec, california)

		both, err := ops.Intersect([]core.Posting{a, b})
		if err != nil {
			log.Fatal(err)
		}
		either, err := ops.Union([]core.Posting{a, b})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s (%s)  size=%7d+%7d bytes  AND=%6d rows  OR=%7d rows\n",
			codec.Name(), codec.Kind(), a.SizeBytes(), b.SizeBytes(),
			len(both), len(either))
	}

	// Every codec produces identical results; pick by workload with the
	// advisor (see examples/advisor for the full decision guide).
	stats := core.ComputeStats(iphone, 1<<20)
	rec := core.Advise(stats, core.WorkloadIntersection)
	fmt.Printf("\nadvisor: for intersection-heavy work use %s — %s\n", rec.Codec, rec.Reason)
}

func mustCompress(c core.Codec, values []uint32) core.Posting {
	p, err := c.Compress(values)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
