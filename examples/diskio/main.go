// Diskio: the storage experiment the paper deferred (§4.1), made
// controllable. Postings live on a simulated device that counts every
// read; a skewed intersection then shows (1) skip pointers fetching a
// small fraction of the payload, and (2) the seek-vs-bandwidth
// crossover between per-block list reads and whole-payload bitmap
// streaming on slow vs fast devices.
package main

import (
	"fmt"
	"log"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/intlist"
	"repro/internal/iosim"
	"repro/internal/ops"
)

func main() {
	short := gen.Uniform(50, 1<<22, 1)
	long := gen.Uniform(400_000, 1<<22, 2)
	fmt.Printf("skewed intersection: |L1|=%d, |L2|=%d over a 2^22 domain\n\n", len(short), len(long))

	devices := []struct {
		name    string
		seekUS  float64
		usPerKB float64
	}{
		{"hdd-like  (5ms seek)", 5000, 10},
		{"ssd-like  (80us read)", 80, 0.25},
		{"nvme-like (10us read)", 10, 0.25},
	}
	for _, dev := range devices {
		fmt.Printf("%s\n", dev.name)
		fmt.Printf("  %-22s %14s %10s %14s\n", "method", "bytes fetched", "reads", "device cost")

		// Skip-pointered list: probes fetch only the blocks they touch.
		d := iosim.NewDisk(dev.seekUS, dev.usPerKB)
		ps, err := iosim.StoreList(d, intlist.Blocked{BC: intlist.VBBlock()}, short)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := iosim.StoreList(d, intlist.Blocked{BC: intlist.VBBlock()}, long)
		if err != nil {
			log.Fatal(err)
		}
		d.Reset()
		mustIntersect(ps, pl)
		report(d, "VB + skip pointers")

		// The same list without skips walks every block up to the last
		// probe.
		d2 := iosim.NewDisk(dev.seekUS, dev.usPerKB)
		ps2, _ := iosim.StoreList(d2, intlist.Blocked{BC: intlist.VBBlock(), NoSkips: true}, short)
		pl2, _ := iosim.StoreList(d2, intlist.Blocked{BC: intlist.VBBlock(), NoSkips: true}, long)
		d2.Reset()
		mustIntersect(ps2, pl2)
		report(d2, "VB, no skips")

		// A compressed bitmap must stream its whole payload.
		d3 := iosim.NewDisk(dev.seekUS, dev.usPerKB)
		pa, _ := bitmap.NewRoaring().Compress(short)
		pb, _ := bitmap.NewRoaring().Compress(long)
		sa, err := iosim.StoreWhole(d3, pa)
		if err != nil {
			log.Fatal(err)
		}
		sb, err := iosim.StoreWhole(d3, pb)
		if err != nil {
			log.Fatal(err)
		}
		d3.Reset()
		mustIntersect(sa, sb)
		report(d3, "Roaring (whole payload)")
		fmt.Println()
	}
	fmt.Println("lessons: skip pointers cut bytes fetched ~80x versus the no-skip walk,")
	fmt.Println("but per-probe request latency dominates device cost at this probe count —")
	fmt.Println("streaming the whole (80x larger) bitmap costs fewer requests. Skip-based")
	fmt.Println("fetching wins once request latency approaches memory speeds or payloads")
	fmt.Println("grow faster than probe counts; batching probes per block gets both.")
}

func mustIntersect(ps ...core.Posting) {
	if _, err := ops.Intersect(ps); err != nil {
		log.Fatal(err)
	}
}

func report(d *iosim.Disk, label string) {
	reads, bytes, cost := d.Stats()
	fmt.Printf("  %-22s %14d %10d %11.2f ms\n", label, bytes, reads, cost/1000)
}
