// Searchengine: a miniature information-retrieval system (§A.1) built
// on the index substrate — compressed posting lists, conjunctive (AND)
// and disjunctive (OR) query processing via SvS with skip pointers, a
// toy top-k ranking, and index persistence through the self-describing
// posting serialization.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/codecs"
	"repro/internal/index"
)

var documents = []string{
	"compressed bitmap indexes accelerate analytical queries",
	"inverted lists power every web search engine",
	"roaring bitmap containers mix arrays and bitmaps",
	"search engines compress inverted lists with pfordelta",
	"bitmap compression and inverted list compression solve the same problem",
	"skip pointers make intersection of compressed lists fast",
	"elias fano encoding supports search without decompression",
	"word aligned hybrid compression uses fill words and literal words",
	"databases use bitmap indexes and search engines use inverted lists",
	"the intersection of two compressed lists is an uncompressed list",
}

func main() {
	// The paper recommends Roaring for intersection-dominated IR (§7.1).
	codec, err := codecs.ByName("Roaring")
	if err != nil {
		log.Fatal(err)
	}
	builder := index.NewBuilder(codec)
	for _, d := range documents {
		builder.AddDocument(d)
	}
	idx, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d documents, %d terms, %d compressed bytes (codec: Roaring)\n\n",
		idx.Docs(), idx.Terms(), idx.SizeBytes())

	for _, q := range [][]string{
		{"compressed", "lists"},
		{"bitmap", "inverted"},
		{"search", "engines"},
	} {
		and, err := idx.Conjunctive(q...)
		if err != nil {
			log.Fatal(err)
		}
		or, err := idx.Disjunctive(q...)
		if err != nil {
			log.Fatal(err)
		}
		top, err := idx.TopK(2, q...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %v\n  AND -> docs %v\n  OR  -> %d docs\n  top-2:\n", q, and, len(or))
		for _, r := range top {
			fmt.Printf("    [%d] (score %d) %s\n", r.Doc, r.Score, documents[r.Doc])
		}
		fmt.Println()
	}

	// Persist and reload: the serialized index embeds self-describing
	// compressed postings.
	var buf bytes.Buffer
	written, err := idx.WriteTo(&buf)
	if err != nil {
		log.Fatal(err)
	}
	reloaded, err := index.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	again, err := reloaded.Conjunctive("compressed", "lists")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %d bytes; reloaded index answers AND(compressed, lists) -> %v\n",
		written, again)
}
