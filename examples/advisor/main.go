// Advisor: the paper's §7 decision guidelines driving a real build.
//
// The example synthesizes a corpus whose terms span the paper's
// density/distribution grid — an every-doc stopword, a scattered dense
// term, a sparse uniformly-spread term, and a sparse zipf-like term —
// and feeds it through index.NewAutoBuilder, the adaptive build path
// that consults core.AdviseList for every posting list and records the
// chosen codec in the BVIX3 dict's per-term codec byte.
//
// Per-term rules (core.AdviseList; DESIGN §8):
//
//   - dense (|L|/d >= 1/5) with long runs (N/Runs >= 4) → Roaring+Run,
//   - dense otherwise                                   → Roaring,
//   - sparse, zipf-like                                 → SIMDPforDelta*,
//   - sparse, spread-out                                → SIMDBP128*.
//
// "Zipf-like" is the WorkloadSpace concentration rule shared with
// core.Advise: Stats.Concentration = (median-min)/(max-min) sits near
// 0.5 for uniform or markov spread and near 0 when the list's mass
// piles up at the start of the domain; below the 0.25 cut, gap coding
// with patched exceptions (SIMDPforDelta*) takes the least space at
// every density (§7.1 point 1.(2)).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/index"
)

const nDocs = 8192

// term defines one vocabulary entry by the set of documents containing
// it; member reports whether doc i does.
type term struct {
	name   string
	shape  string
	member func(i int) bool
}

func main() {
	quorum := toSet(gen.Uniform(160, nDocs, 7))   // sparse, uniformly spread
	beta := toSet(gen.Zipf(160, nDocs, 1.15, 11)) // sparse, mass at the start
	terms := []term{
		{"the", "every document (one long run)", func(i int) bool { return true }},
		{"data", "2 of every 5 documents, scattered", func(i int) bool { return i%5 == 0 || i%5 == 2 }},
		{"quorum", "~2% of documents, uniform spread", func(i int) bool { return quorum[uint32(i)] }},
		{"beta", "~2% of documents, zipf-like", func(i int) bool { return beta[uint32(i)] }},
	}

	// Assemble the corpus and feed it through the adaptive builder — the
	// same per-list selection path `bvindex -codec auto` uses.
	builder := index.NewAutoBuilder()
	docids := map[string][]uint32{}
	var words []string
	for i := 0; i < nDocs; i++ {
		words = words[:0]
		for _, t := range terms {
			if t.member(i) {
				words = append(words, t.name)
				docids[t.name] = append(docids[t.name], uint32(i))
			}
		}
		builder.AddDocument(strings.Join(words, " "))
	}
	idx, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("built %d documents, %d terms; codec mix: %v\n\n", nDocs, idx.Terms(), idx.CodecMix())
	for _, t := range terms {
		s := core.ComputeStats(docids[t.name], nDocs)
		rec := core.AdviseList(s)
		chosen := idx.TermCodec(t.name)
		fmt.Printf("%-8s %s\n", t.name, t.shape)
		fmt.Printf("  n=%d density=%.4f meanRun=%.1f concentration=%.2f\n",
			s.N, s.Density, float64(s.N)/float64(s.Runs), s.Concentration)
		fmt.Printf("  advisor: %s (%s)\n", rec.Codec, rec.Reason)
		fmt.Printf("  builder chose: %s\n\n", chosen)
		if chosen != rec.Codec {
			log.Fatalf("builder decision %q disagrees with advisor %q", chosen, rec.Codec)
		}
	}

	// The decision is persisted, not recomputed: write the index to disk
	// and reopen it — the codec mix comes straight from the BVIX3 dict's
	// per-term codec bytes, before any posting is materialized.
	path := filepath.Join(os.TempDir(), "advisor-example.idx")
	defer os.Remove(path)
	if err := idx.WriteFile(path, index.FormatBVIX3); err != nil {
		log.Fatal(err)
	}
	reopened, err := index.OpenFile(path)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	fmt.Printf("reopened %s: codec mix from dict bytes: %v\n", filepath.Base(path), reopened.CodecMix())
}

func toSet(values []uint32) map[uint32]bool {
	m := make(map[uint32]bool, len(values))
	for _, v := range values {
		m[v] = true
	}
	return m
}
