// Advisor: the paper's §7 decision guidelines as a tool. Feed it a list
// (synthetic here; swap in your own IDs) and a workload, and it
// recommends a codec — then validates the recommendation by actually
// measuring the alternatives on your data.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ops"
)

type scenario struct {
	name     string
	list     []uint32
	domain   uint64
	workload core.Workload
	wname    string
}

func main() {
	scenarios := []scenario{
		{
			name:     "sparse uniform (search-engine posting list)",
			list:     gen.Uniform(20_000, 1<<24, 1),
			domain:   1 << 24,
			workload: core.WorkloadSpace,
			wname:    "space",
		},
		{
			name:     "ultra dense (low-cardinality DB column)",
			list:     gen.MarkovN(5_000_000, 1<<24, 8, 2),
			domain:   1 << 24,
			workload: core.WorkloadSpace,
			wname:    "space",
		},
		{
			name:     "conjunctive query column",
			list:     gen.Uniform(100_000, 1<<24, 3),
			domain:   1 << 24,
			workload: core.WorkloadIntersection,
			wname:    "intersection",
		},
		{
			name:     "range-query column (union-heavy)",
			list:     gen.Uniform(100_000, 1<<24, 4),
			domain:   1 << 24,
			workload: core.WorkloadUnion,
			wname:    "union",
		},
	}

	for _, sc := range scenarios {
		stats := core.ComputeStats(sc.list, sc.domain)
		rec := core.Advise(stats, sc.workload)
		fmt.Printf("%s\n  n=%d density=%.4f gapCV=%.2f workload=%s\n  -> %s\n     %s\n",
			sc.name, stats.N, stats.Density, stats.GapCV, sc.wname, rec.Codec, rec.Reason)
		validate(sc, rec.Codec)
		fmt.Println()
	}
}

// validate measures the recommended codec against two alternatives on
// the scenario's own data so the advice is checkable, not oracular.
func validate(sc scenario, recommended string) {
	alternatives := map[string]bool{recommended: true, "Roaring": true, "SIMDBP128*": true, "WAH": true}
	other := gen.Uniform(len(sc.list)/10+1, uint32(sc.domain), 99)
	fmt.Printf("     %-14s %12s %12s\n", "codec", "size", sc.wname+" ms")
	for name := range alternatives {
		c, err := codecs.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		p, err := c.Compress(sc.list)
		if err != nil {
			log.Fatal(err)
		}
		q, err := c.Compress(other)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		switch sc.workload {
		case core.WorkloadUnion:
			_, err = ops.Union([]core.Posting{p, q})
		default:
			_, err = ops.Intersect([]core.Posting{p, q})
		}
		if err != nil {
			log.Fatal(err)
		}
		marker := "  "
		if name == recommended {
			marker = "->"
		}
		fmt.Printf("   %s %-14s %12d %12.3f\n",
			marker, name, p.SizeBytes(), float64(time.Since(start).Microseconds())/1000)
	}
}
