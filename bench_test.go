// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation as testing.B benchmarks: compression happens in
// setup; the timed loop runs exactly the operation the paper measures
// (decompression, intersection, union, or the named query plan).
//
// Run everything:   go test -bench=. -benchmem
// One figure:       go test -bench=BenchmarkFig3 -benchmem
//
// The workloads are density-preserving scale-downs of the paper's
// (DESIGN.md §2); cmd/bvbench runs the same experiments at configurable
// scale with paper-style table output.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gen"
	"repro/internal/intlist"
	"repro/internal/ops"
)

// benchDomain keeps go test -bench runtimes in seconds while preserving
// the paper's densities.
const benchDomain = 1 << 18

// benchDensities mirrors the paper's 10M and 1B list sizes over 2^31.
var benchDensities = map[string]float64{"10M": 0.00466, "1B": 0.466}

var benchDists = []string{"uniform", "zipf", "markov"}

func synthList(dist string, n int, seed int64) []uint32 {
	switch dist {
	case "uniform":
		return gen.Uniform(n, benchDomain, seed)
	case "zipf":
		return gen.Zipf(n, benchDomain, 1.0, seed)
	default:
		return gen.MarkovN(n, benchDomain, 8, seed)
	}
}

func mustCompress(b *testing.B, c core.Codec, lists ...[]uint32) []core.Posting {
	b.Helper()
	out := make([]core.Posting, len(lists))
	for i, l := range lists {
		p, err := c.Compress(l)
		if err != nil {
			b.Fatalf("%s: %v", c.Name(), err)
		}
		out[i] = p
	}
	return out
}

// BenchmarkFig3Decompression regenerates Figure 3: decompression across
// distributions, densities, and all 24 methods. The reported
// bytes-metric is the compressed size (the figure's x axis).
func BenchmarkFig3Decompression(b *testing.B) {
	for _, dist := range benchDists {
		for label, d := range benchDensities {
			list := synthList(dist, int(d*benchDomain), 1)
			for _, c := range codecs.All() {
				ps := mustCompress(b, c, list)
				b.Run(fmt.Sprintf("%s/%s/%s", dist, label, c.Name()), func(b *testing.B) {
					b.ReportMetric(float64(ps[0].SizeBytes()), "compressed-bytes")
					for i := 0; i < b.N; i++ {
						sink = ps[0].Decompress()
					}
				})
			}
		}
	}
}

// sink defeats dead-code elimination.
var sink []uint32

// benchPair builds the Table 1/2 two-list workload at ratio 1000.
func benchPair(b *testing.B, dist string, d float64) ([]uint32, []uint32) {
	b.Helper()
	n2 := int(d * benchDomain)
	n1 := n2 / 1000
	if n1 < 1 {
		n1 = 1
	}
	return synthList(dist, n1, 2), synthList(dist, n2, 3)
}

// BenchmarkTable1Intersection regenerates Table 1.
func BenchmarkTable1Intersection(b *testing.B) {
	for _, dist := range benchDists {
		for label, d := range benchDensities {
			l1, l2 := benchPair(b, dist, d)
			for _, c := range codecs.All() {
				ps := mustCompress(b, c, l1, l2)
				b.Run(fmt.Sprintf("%s/%s/%s", dist, label, c.Name()), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						r, err := ops.Intersect(ps)
						if err != nil {
							b.Fatal(err)
						}
						sink = r
					}
				})
			}
		}
	}
}

// BenchmarkTable2Union regenerates Table 2.
func BenchmarkTable2Union(b *testing.B) {
	for _, dist := range benchDists {
		for label, d := range benchDensities {
			l1, l2 := benchPair(b, dist, d)
			for _, c := range codecs.All() {
				ps := mustCompress(b, c, l1, l2)
				b.Run(fmt.Sprintf("%s/%s/%s", dist, label, c.Name()), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						r, err := ops.Union(ps)
						if err != nil {
							b.Fatal(err)
						}
						sink = r
					}
				})
			}
		}
	}
}

// benchWorkload runs every query of a dataset workload under every
// codec (Figures 4, 5, 8-12).
func benchWorkload(b *testing.B, w datasets.Workload) {
	b.Helper()
	for _, c := range codecs.All() {
		ps := mustCompress(b, c, w.Lists...)
		for _, q := range w.Queries {
			b.Run(fmt.Sprintf("%s/%s/%s", w.Name, q.Name, c.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := ops.Eval(q.Plan, ps)
					if err != nil {
						b.Fatal(err)
					}
					sink = r
				}
			})
		}
	}
}

// benchScale shrinks the real datasets for bench runs.
const benchScale = 1.0 / 256

// BenchmarkFig4SSB regenerates Figure 4 (SF=1 analogue).
func BenchmarkFig4SSB(b *testing.B) { benchWorkload(b, datasets.SSB(1, benchScale)) }

// BenchmarkFig5TPCH regenerates Figure 5 (SF=1 analogue).
func BenchmarkFig5TPCH(b *testing.B) { benchWorkload(b, datasets.TPCH(1, benchScale)) }

// BenchmarkFig6Web regenerates Figure 6: average AND/OR over a query
// log on the web workload.
func BenchmarkFig6Web(b *testing.B) {
	w := datasets.Web(benchScale, 100, 20)
	for _, c := range codecs.All() {
		ps := mustCompress(b, c, w.Lists...)
		for _, op := range []string{"and", "or"} {
			b.Run(fmt.Sprintf("Web/%s/%s", op, c.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, q := range w.Queries {
						if q.Name != op {
							continue
						}
						r, err := ops.Eval(q.Plan, ps)
						if err != nil {
							b.Fatal(err)
						}
						sink = r
					}
				}
			})
		}
	}
}

// BenchmarkFig7SkipPointers regenerates Figure 7: intersection with and
// without skip pointers for the five codecs the paper picks.
func BenchmarkFig7SkipPointers(b *testing.B) {
	blocks := map[string]intlist.BlockCodec{
		"VB":             intlist.VBBlock(),
		"PforDelta":      intlist.PforDeltaBlock(),
		"SIMDPforDelta":  intlist.SIMDPforDeltaBlock(),
		"SIMDPforDelta*": intlist.SIMDPforDeltaStarBlock(),
		"GroupVB":        intlist.GroupVBBlock(),
	}
	for _, dist := range []string{"uniform", "zipf"} {
		l1, l2 := benchPair(b, dist, benchDensities["10M"])
		for name, bc := range blocks {
			for _, mode := range []struct {
				label string
				codec core.Codec
			}{
				{"with-skips", intlist.NewBlocked(bc)},
				{"no-skips", intlist.NewBlockedNoSkips(bc)},
			} {
				ps := mustCompress(b, mode.codec, l1, l2)
				b.Run(fmt.Sprintf("%s/%s/%s", dist, name, mode.label), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						r, err := ops.Intersect(ps)
						if err != nil {
							b.Fatal(err)
						}
						sink = r
					}
				})
			}
		}
	}
}

// BenchmarkTable3Ratio regenerates Table 3: intersection at list size
// ratios 1 and 10 (the merge regime).
func BenchmarkTable3Ratio(b *testing.B) {
	n2 := int(benchDensities["1B"] * benchDomain / 10)
	for _, dist := range benchDists {
		for _, theta := range []int{1, 10} {
			l1 := synthList(dist, n2/theta, 4)
			l2 := synthList(dist, n2, 5)
			for _, c := range codecs.All() {
				ps := mustCompress(b, c, l1, l2)
				b.Run(fmt.Sprintf("%s/theta=%d/%s", dist, theta, c.Name()), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						r, err := ops.Intersect(ps)
						if err != nil {
							b.Fatal(err)
						}
						sink = r
					}
				})
			}
		}
	}
}

// BenchmarkFig8Graph regenerates Figure 8.
func BenchmarkFig8Graph(b *testing.B) { benchWorkload(b, datasets.Graph(benchScale)) }

// BenchmarkFig9KDDCup regenerates Figure 9.
func BenchmarkFig9KDDCup(b *testing.B) { benchWorkload(b, datasets.KDDCup(benchScale)) }

// BenchmarkFig10Berkeleyearth regenerates Figure 10.
func BenchmarkFig10Berkeleyearth(b *testing.B) { benchWorkload(b, datasets.Berkeleyearth(benchScale)) }

// BenchmarkFig11Higgs regenerates Figure 11.
func BenchmarkFig11Higgs(b *testing.B) { benchWorkload(b, datasets.Higgs(benchScale)) }

// BenchmarkFig12Kegg regenerates Figure 12 (unscaled — the dataset is
// tiny).
func BenchmarkFig12Kegg(b *testing.B) { benchWorkload(b, datasets.Kegg(1)) }

// BenchmarkCompression measures compression speed itself — not a paper
// table, but useful for adopters.
func BenchmarkCompression(b *testing.B) {
	list := synthList("uniform", int(benchDensities["10M"]*benchDomain), 6)
	for _, c := range codecs.All() {
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := c.Compress(list)
				if err != nil {
					b.Fatal(err)
				}
				sinkPosting = p
			}
		})
	}
}

var sinkPosting core.Posting
