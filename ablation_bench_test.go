package repro

import (
	"fmt"
	"testing"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/intlist"
	"repro/internal/ops"
)

// Ablation benchmarks for the design constants the paper fixes and
// DESIGN.md calls out: Roaring's 4096 container threshold, the
// 128-element block size (footnote 5), PforDelta's 90% regular-value
// fraction, and the skip-pointer choice (already covered by
// BenchmarkFig7SkipPointers).

// BenchmarkAblationRoaringThreshold sweeps the array/bitmap container
// switch point. 4096 is the break-even between 2-byte array entries and
// the 8 KiB bitmap container; smaller thresholds waste bitmap space on
// mid-density buckets, larger ones slow membership probes.
func BenchmarkAblationRoaringThreshold(b *testing.B) {
	short := gen.Uniform(2000, benchDomain, 10)
	long := gen.MarkovN(120000, benchDomain, 8, 11)
	for _, threshold := range []int{512, 1024, 2048, 4096, 8192, 16384} {
		codec := bitmap.NewRoaringThreshold(threshold)
		ps := mustCompress(b, codec, short, long)
		b.Run(fmt.Sprintf("threshold=%d", threshold), func(b *testing.B) {
			b.ReportMetric(float64(ps[0].SizeBytes()+ps[1].SizeBytes()), "compressed-bytes")
			for i := 0; i < b.N; i++ {
				r, err := ops.Intersect(ps)
				if err != nil {
					b.Fatal(err)
				}
				sink = r
			}
		})
	}
}

// BenchmarkAblationBlockSize sweeps elements-per-block for two codecs.
// Small blocks skip precisely but pay per-block headers and skip
// pointers; large blocks amortize headers but decode more per probe.
func BenchmarkAblationBlockSize(b *testing.B) {
	short := gen.Uniform(300, benchDomain, 12)
	long := gen.Uniform(100000, benchDomain, 13)
	blocks := map[string]intlist.BlockCodec{
		"VB":         intlist.VBBlock(),
		"PforDelta*": intlist.PforDeltaStarBlock(),
	}
	for name, bc := range blocks {
		for _, size := range []int{16, 32, 64, 128} {
			codec := intlist.NewBlockedSize(bc, size)
			ps := mustCompress(b, codec, short, long)
			b.Run(fmt.Sprintf("%s/block=%d", name, size), func(b *testing.B) {
				b.ReportMetric(float64(ps[1].SizeBytes()), "compressed-bytes")
				for i := 0; i < b.N; i++ {
					r, err := ops.Intersect(ps)
					if err != nil {
						b.Fatal(err)
					}
					sink = r
				}
			})
		}
	}
}

// BenchmarkAblationPforThreshold sweeps the regular-value fraction of
// PforDelta on exception-heavy data: low fractions shrink b but pay for
// many 32-bit exceptions and forced-exception chains; 1.0 reduces to
// PforDelta*.
func BenchmarkAblationPforThreshold(b *testing.B) {
	list := outlierList(100000, 1<<30)
	for _, frac := range []float64{0.7, 0.8, 0.9, 0.95, 1.0} {
		codec := intlist.NewPforDeltaThreshold(frac)
		ps := mustCompress(b, codec, list)
		b.Run(fmt.Sprintf("frac=%.2f", frac), func(b *testing.B) {
			b.ReportMetric(float64(ps[0].SizeBytes()), "compressed-bytes")
			for i := 0; i < b.N; i++ {
				sink = ps[0].Decompress()
			}
		})
	}
}

// outlierList mixes small gaps with ~8% large outliers — the workload
// PforDelta's exception machinery exists for.
func outlierList(n int, domain uint32) []uint32 {
	out := make([]uint32, 0, n)
	v := uint32(0)
	for len(out) < n {
		if len(out)%12 == 7 {
			v += 1 << 14
		} else {
			v += 1 + uint32(len(out)%7)
		}
		if v >= domain {
			break
		}
		out = append(out, v)
	}
	return out
}

// BenchmarkAblationVALWAHSegments compares VALWAH's per-bitmap segment
// choice against each fixed segment length, showing why the adaptive
// choice buys space.
func BenchmarkAblationVALWAHSegments(b *testing.B) {
	list := gen.MarkovN(40000, benchDomain, 8, 14)
	adaptive, err := bitmap.NewVALWAH().Compress(list)
	if err != nil {
		b.Fatal(err)
	}
	wah, err := bitmap.NewWAH().Compress(list)
	if err != nil {
		b.Fatal(err)
	}
	for name, p := range map[string]core.Posting{
		"VALWAH-adaptive": adaptive,
		"WAH-31":          wah,
	} {
		p := p
		b.Run(name, func(b *testing.B) {
			b.ReportMetric(float64(p.SizeBytes()), "compressed-bytes")
			for i := 0; i < b.N; i++ {
				sink = p.Decompress()
			}
		})
	}
}

// BenchmarkAblationHybridRun compares plain Roaring against the
// Roaring+Run hybrid (the unified-codec direction of the paper's lesson
// 1) on run-heavy (markov) and run-free (uniform) data: the hybrid
// should win space dramatically on runs and cost nothing elsewhere.
func BenchmarkAblationHybridRun(b *testing.B) {
	workloads := map[string][]uint32{
		"markov-runs": gen.MarkovN(120000, benchDomain, 32, 20),
		"uniform":     gen.Uniform(120000, benchDomain, 21),
	}
	other := gen.Uniform(2000, benchDomain, 22)
	for wname, vals := range workloads {
		for _, codec := range []core.Codec{bitmap.NewRoaring(), bitmap.NewRoaringRun()} {
			ps := mustCompress(b, codec, vals, other)
			b.Run(wname+"/"+codec.Name(), func(b *testing.B) {
				b.ReportMetric(float64(ps[0].SizeBytes()), "compressed-bytes")
				for i := 0; i < b.N; i++ {
					r, err := ops.Intersect(ps)
					if err != nil {
						b.Fatal(err)
					}
					sink = r
				}
			})
		}
	}
}
