# Reproduction of "Bitmap Compression vs. Inverted List Compression"
# (SIGMOD 2017). See README.md and DESIGN.md.

GO ?= go

.PHONY: all build vet test race bench shardbench walbench figures experiments loadtest oracle clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# One testing.B benchmark per paper table/figure plus the ablations.
# Also emits the engine-vs-serial comparison as results/BENCH_engine.json,
# the decode-kernel microbenchmarks as results/BENCH_kernels.json, and
# the index build/open benchmarks (sharded build, eager BVIX2 vs
# mmap-backed BVIX3 time-to-first-query) as results/BENCH_index.json
# for regression tracking. The hybrid matrix (advisor pick vs every
# candidate codec across the density×distribution grid, plus the
# mixed/galloping speedup cells) is self-gating: the run fails if any
# cell's pick is Pareto-dominated or no kernel cell clears 1.5x. The
# top-k matrix (exhaustive vs MaxScore vs Block-Max-WAND through a
# mapped BVIX3+impacts file) gates on ranking identity, real block
# skipping (decode counters), and BMW wall-clock speedup.
bench:
	mkdir -p results
	$(GO) test -run NONE -bench BenchmarkEngine -benchmem -json ./internal/ops > results/BENCH_engine.json
	$(GO) test -run NONE -bench '.' -benchmem -json ./internal/kernels > results/BENCH_kernels.json
	$(GO) test -run NONE -bench BenchmarkIndex -benchmem -json ./internal/index > results/BENCH_index.json
	$(GO) test -run TestHybridBenchGate -count=1 ./internal/bench \
		-args -hybrid.full -hybrid.out $(CURDIR)/results/BENCH_hybrid.json
	$(GO) test -run TestTopKPruningGate -count=1 ./internal/bench \
		-args -topk.full -topk.out $(CURDIR)/results/BENCH_topk.json
	$(GO) test -run TestShardBenchGate -count=1 ./internal/bench \
		-args -shard.full -shard.out $(CURDIR)/results/BENCH_shard.json
	$(GO) test -run TestWALBenchGate -count=1 ./internal/bench \
		-args -wal.full -wal.out $(CURDIR)/results/BENCH_wal.json
	@for f in BENCH_engine BENCH_kernels BENCH_index; do \
		if ! test -s results/$$f.json || ! grep -q 'ns/op' results/$$f.json; then \
			echo "FATAL: results/$$f.json missing or contains no benchmark output (did the -bench pattern match?)" >&2; \
			exit 1; \
		fi; \
	done
	@for f in BENCH_hybrid BENCH_topk BENCH_shard BENCH_wal; do \
		if ! test -s results/$$f.json || ! grep -q '"pass": true' results/$$f.json; then \
			echo "FATAL: results/$$f.json missing or gates failed" >&2; \
			exit 1; \
		fi; \
	done
	$(GO) test -bench=. -benchmem -timeout 60m ./...

# Scale-out serving matrix alone: identity through the router at 4
# shards, modeled fleet-capacity scaling at 1/2/4/8 shards, and the
# hedged-request matrix under an injected straggler replica. Writes
# (and gates on) results/BENCH_shard.json.
shardbench:
	mkdir -p results
	$(GO) test -run TestShardBenchGate -count=1 -v ./internal/bench \
		-args -shard.full -shard.out $(CURDIR)/results/BENCH_shard.json

# WAL fsync-policy sweep alone: per-append fsync vs group-commit
# windows under 8 concurrent appenders, gated on exact replay
# round-trips and on group commit never being materially slower than
# per-append sync. Writes (and gates on) results/BENCH_wal.json.
walbench:
	mkdir -p results
	$(GO) test -run TestWALBenchGate -count=1 -v ./internal/bench \
		-args -wal.full -wal.out $(CURDIR)/results/BENCH_wal.json

# Full chaos-mode load run: 30s of open-loop zipfian traffic against a
# real bvserve subprocess while the orchestrator hot-reloads it (SIGHUP
# and POST /reload), swaps in a corrupted index to force a degraded-mode
# transition, and SIGKILLs/restarts it mid-flight. Every response must
# be correct, a clean shed, or a documented degraded partial; writes
# results/LOAD_chaos.json and exits non-zero on any SLO gate violation.
# Then the live-ingestion storm: bvserve -live under sentinel-verified
# ingest/delete traffic, SIGKILLed mid-ingest twice and restarted over
# the same directory, gated on zero lost acked writes, zero resurrected
# deletes, and zero incorrect responses; writes results/LOAD_ingest.json.
loadtest:
	mkdir -p bin results
	$(GO) build -o bin/bvserve ./cmd/bvserve
	$(GO) run ./cmd/bvload -chaos -serve-bin bin/bvserve \
		-duration 30s -rate 150 -slo-p99 250ms -out results/LOAD_chaos.json
	$(GO) run ./cmd/bvload -ingest -serve-bin bin/bvserve \
		-duration 20s -rate 120 -out results/LOAD_ingest.json

# Differential correctness oracle: every optimized path vs its slow
# reference across a randomized seed sweep (see internal/oracle).
oracle:
	$(GO) test -count=1 ./internal/oracle

# Regenerate every table/figure as text tables (see cmd/bvbench -help
# for scale knobs).
experiments:
	$(GO) run ./cmd/bvbench -exp all -summary

# Render the figures as SVG scatter plots under figs/.
figures:
	$(GO) run ./cmd/bvbench -exp all -format csv | $(GO) run ./cmd/bvplot -out figs

clean:
	rm -rf figs
