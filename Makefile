# Reproduction of "Bitmap Compression vs. Inverted List Compression"
# (SIGMOD 2017). See README.md and DESIGN.md.

GO ?= go

.PHONY: all build vet test race bench figures experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# One testing.B benchmark per paper table/figure plus the ablations.
# Also emits the engine-vs-serial comparison as results/BENCH_engine.json,
# the decode-kernel microbenchmarks as results/BENCH_kernels.json, and
# the index build/open benchmarks (sharded build, eager BVIX2 vs
# mmap-backed BVIX3 time-to-first-query) as results/BENCH_index.json
# for regression tracking.
bench:
	mkdir -p results
	$(GO) test -run NONE -bench BenchmarkEngine -benchmem -json ./internal/ops > results/BENCH_engine.json
	$(GO) test -run NONE -bench '.' -benchmem -json ./internal/kernels > results/BENCH_kernels.json
	$(GO) test -run NONE -bench BenchmarkIndex -benchmem -json ./internal/index > results/BENCH_index.json
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure as text tables (see cmd/bvbench -help
# for scale knobs).
experiments:
	$(GO) run ./cmd/bvbench -exp all -summary

# Render the figures as SVG scatter plots under figs/.
figures:
	$(GO) run ./cmd/bvbench -exp all -format csv | $(GO) run ./cmd/bvplot -out figs

clean:
	rm -rf figs
